// Ablation A5 — randomized response backoff for group commands: "if the
// management workstation is operating on a group of nodes, these nodes
// wait for random backoff delays before sending responses, so that their
// packets will not collide" (paper Sec. IV-B). We broadcast a radio-get
// to every node in range and count responses that survive, with the
// backoff window swept from zero (everyone answers at once) to the
// paper's setting.
#include <cstdio>
#include <set>

#include "bench/common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace liteview;

struct Outcome {
  double responders = 0;
  double corrupted = 0;   // frames lost to collisions on the air
  double mgmt_packets = 0;  // total protocol cost incl. retransmissions
};

Outcome responses_with_backoff(std::uint64_t seed, int backoff_ms) {
  testbed::TestbedConfig cfg = testbed::Testbed::paper_config(seed);
  cfg.controller.response_backoff_min = sim::SimTime::ms(1);
  cfg.controller.response_backoff_max =
      sim::SimTime::ms(std::max(2, backoff_ms));
  // A tight cluster: every node hears the broadcast and every response
  // collides at the workstation unless staggered.
  auto tb = testbed::Testbed::grid(2, 3, 2.0, cfg);
  tb->warm_up();
  for (std::size_t i = 0; i < tb->size(); ++i) {
    tb->node(i).set_beacon_period(sim::SimTime::sec(120));
  }
  tb->sim().run_for(sim::SimTime::sec(1));

  // Count distinct responders arriving at the workstation, and what the
  // exchange cost on the air.
  std::set<net::Addr> responders;
  auto& ws = tb->workstation();
  ws.endpoint().set_handler(
      [&](net::Addr from, const std::vector<std::uint8_t>& m, bool) {
        const auto msg = lv::decode_mgmt(m);
        if (msg && msg->type == lv::MsgType::kRadioConfig) {
          responders.insert(from);
        }
      });
  tb->accounting().reset();
  const auto corrupted_before = tb->medium().frames_corrupted();
  ws.endpoint().broadcast(lv::encode_mgmt(lv::MsgType::kRadioGetConfig, {}));
  tb->sim().run_for(sim::SimTime::ms(1'500));
  Outcome out;
  out.responders = static_cast<double>(responders.size());
  out.corrupted =
      static_cast<double>(tb->medium().frames_corrupted() - corrupted_before);
  out.mgmt_packets =
      static_cast<double>(tb->accounting().for_port(net::kPortMgmt).packets);
  return out;
}

}  // namespace

int main() {
  bench::header(
      "Ablation A5 — group-command response backoff (6 nodes in range, "
      "broadcast radio-get)");

  constexpr int kReps = 6;
  std::printf("\n%-18s %-16s %-18s %-14s\n", "backoff window",
              "responses / 6", "collided frames", "mgmt packets");
  for (int window : {0, 20, 100, 300}) {
    util::RunningStats resp, corr, pkts;
    const auto rs = bench::replicate<Outcome>(
        kReps, 81 + static_cast<std::uint64_t>(window),
        [&](std::uint64_t seed) {
          return responses_with_backoff(seed, window);
        });
    for (const auto& o : rs) {
      resp.add(o.responders);
      corr.add(o.corrupted);
      pkts.add(o.mgmt_packets);
    }
    std::printf("%-18s %5.1f %+.1f       %8.1f %16.1f\n",
                util::format("[1, %d] ms", std::max(2, window)).c_str(),
                resp.mean(), resp.stddev(), corr.mean(), pkts.mean());
  }

  bench::section("reading");
  std::printf(
      "All windows eventually deliver (the reliable protocol retries),\n"
      "but a tight window makes simultaneous responders collide: the\n"
      "collided-frame and retransmission cost drops as the random window\n"
      "widens — the slack the paper's fixed 500 ms budget pays for.\n");
  return 0;
}
