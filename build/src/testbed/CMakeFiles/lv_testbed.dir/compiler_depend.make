# Empty compiler generated dependencies file for lv_testbed.
# This may be replaced when dependencies are built.
