# Empty dependencies file for text_response_delay.
# This may be replaced when dependencies are built.
