#include "routing/flooding.hpp"

namespace liteview::routing {

bool Flooding::seen_before(net::Addr origin, std::uint16_t id) {
  for (const auto& e : cache_) {
    if (e.origin == origin && e.id == id) return true;
  }
  cache_[cache_next_] = CacheEntry{origin, id};
  cache_next_ = (cache_next_ + 1) % cache_.size();
  return false;
}

bool Flooding::send_first_hop(const net::NetPacket& pkt) {
  // Record our own packet so an echoed rebroadcast is not relayed again.
  (void)seen_before(pkt.src, pkt.id);
  if (!node().stack().send_link(net::kBroadcast, pkt)) {
    ++stats_.dropped_send;
    return false;
  }
  return true;
}

bool Flooding::accept_packet(const net::NetPacket& pkt,
                             const net::LinkContext& ctx) {
  if (ctx.local) return true;
  return !seen_before(pkt.src, pkt.id);
}

void Flooding::forward(net::NetPacket pkt, const net::LinkContext&) {
  if (pkt.ttl == 0) {
    ++stats_.dropped_ttl;
    return;
  }
  --pkt.ttl;
  // Random jitter before rebroadcast de-synchronizes neighbors that all
  // received the same packet at the same instant.
  const auto jitter = sim::SimTime::us(
      jitter_rng_.uniform_int(200, 5'000));
  auto shared = std::make_shared<net::NetPacket>(std::move(pkt));
  node().simulator().schedule_in(jitter, [this, shared] {
    if (node().stack().send_link(net::kBroadcast, *shared)) {
      ++stats_.forwarded;
    } else {
      ++stats_.dropped_send;
    }
  });
}

}  // namespace liteview::routing
