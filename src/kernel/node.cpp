#include "kernel/node.hpp"

#include <cassert>
#include <cmath>

#include "util/bytes.hpp"

namespace liteview::kernel {
namespace {

/// Beacon payload: name (str8) + centimeter fixed-point position + a
/// digest of the sender's neighbor table: (addr, incoming LQI) pairs.
/// Receivers that find themselves in the digest learn the quality of
/// their *outgoing* link — the bidirectional exchange that keeps
/// asymmetric links out of routing (MintRoute-style).
constexpr std::size_t kMaxDigestEntries = 12;

std::vector<std::uint8_t> encode_beacon(const std::string& name,
                                        phy::Position pos,
                                        const NeighborTable& table) {
  util::ByteWriter w;
  w.str8(name);
  w.u32(static_cast<std::uint32_t>(std::lround(pos.x * 100.0)));
  w.u32(static_cast<std::uint32_t>(std::lround(pos.y * 100.0)));
  const auto& entries = table.entries();
  const auto n = std::min(entries.size(), kMaxDigestEntries);
  w.u8(static_cast<std::uint8_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    w.u16(entries[i].addr);
    w.u8(static_cast<std::uint8_t>(entries[i].lqi_ewma + 0.5));
  }
  return std::move(w).take();
}

struct Beacon {
  std::string name;
  phy::Position pos;
  struct DigestEntry {
    net::Addr addr;
    std::uint8_t lqi;
  };
  std::vector<DigestEntry> digest;
};

std::optional<Beacon> decode_beacon(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  Beacon b;
  b.name = r.str8();
  b.pos.x = static_cast<double>(r.u32()) / 100.0;
  b.pos.y = static_cast<double>(r.u32()) / 100.0;
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    Beacon::DigestEntry e;
    e.addr = r.u16();
    e.lqi = r.u8();
    b.digest.push_back(e);
  }
  if (!r.ok()) return std::nullopt;
  return b;
}

}  // namespace

Node::Node(sim::Simulator& sim, phy::Medium& medium, const NodeConfig& cfg)
    : sim_(sim),
      cfg_(cfg),
      mac_(std::make_unique<mac::CsmaMac>(sim, medium, cfg.address,
                                          cfg.position, cfg.mac)),
      stack_(std::make_unique<net::CommStack>(sim, *mac_)),
      table_(cfg.neighbors),
      beacon_rng_(sim.rng_root().stream("kernel.beacon", cfg.address)) {
  stack_->subscribe(net::kPortBeacon,
                    [this](const net::NetPacket& pkt,
                           const net::LinkContext& ctx) { on_beacon(pkt, ctx); });
  log_event(EventCode::kBoot, cfg_.address);
  if (cfg_.beaconing) schedule_beacons();
}

Node::~Node() = default;

void Node::set_channel(phy::Channel ch) {
  assert(ch >= phy::kMinChannel && ch <= phy::kMaxChannel);
  mac_->set_channel(ch);
  log_event(EventCode::kChannelChanged, ch);
}

void Node::power_down() {
  if (!powered_) return;
  powered_ = false;
  beacon_timer_.cancel();
  // Volatile kernel state dies with the power: neighbor table, parameter
  // buffer, and the RAM event log. The address book and location hints
  // survive — they model install-time flash configuration.
  table_.clear();
  param_buffer_.clear();
  event_log_.clear();
  mac_->set_radio_enabled(false);
}

void Node::power_up() {
  if (powered_) return;
  powered_ = true;
  mac_->set_radio_enabled(true);
  log_event(EventCode::kRebooted, cfg_.address);
  // Fast rediscovery: announce immediately, then fall back into the
  // jittered schedule.
  send_beacon();
  if (cfg_.beaconing) schedule_beacons();
}

void Node::send_beacon() {
  if (!powered_) return;
  net::NetPacket pkt;
  pkt.src = cfg_.address;
  pkt.dst = net::kBroadcast;
  pkt.port = net::kPortBeacon;
  pkt.ttl = 1;
  pkt.payload = encode_beacon(cfg_.name, cfg_.position, table_);
  stack_->send_link(net::kBroadcast, pkt);
}

void Node::schedule_beacons() {
  beacon_timer_.cancel();
  if (!powered_) return;
  // Random initial phase, and ±10% fresh jitter on every round: two
  // hidden nodes whose beacons collide at a common neighbor must not
  // keep colliding forever (fixed-phase beacons do exactly that).
  const auto phase = sim::SimTime::ns(static_cast<std::int64_t>(
      beacon_rng_.uniform() *
      static_cast<double>(cfg_.beacon_period.nanoseconds())));
  beacon_timer_ = sim_.schedule_in(phase, [this] { beacon_round(); });
}

void Node::beacon_round() {
  send_beacon();
  const std::size_t before = table_.size();
  table_.expire(sim_.now());
  if (table_.size() < before) {
    log_event(EventCode::kNeighborExpired,
              static_cast<std::uint32_t>(before - table_.size()));
  }
  const double jitter = beacon_rng_.uniform(0.9, 1.1);
  const auto next = sim::SimTime::ns(static_cast<std::int64_t>(
      jitter * static_cast<double>(cfg_.beacon_period.nanoseconds())));
  beacon_timer_ = sim_.schedule_in(next, [this] { beacon_round(); });
}

void Node::set_beacon_period(sim::SimTime period) {
  assert(period > sim::SimTime::zero());
  cfg_.beacon_period = period;
  log_event(EventCode::kBeaconPeriodChanged,
            static_cast<std::uint32_t>(period.milliseconds()));
  if (cfg_.beaconing) schedule_beacons();
}

void Node::on_beacon(const net::NetPacket& pkt, const net::LinkContext& ctx) {
  if (!powered_ || ctx.local || pkt.src == cfg_.address) return;
  const auto beacon = decode_beacon(pkt.payload);
  if (!beacon) return;
  const bool was_known = table_.find(pkt.src) != nullptr;
  table_.observe(pkt.src, beacon->name, beacon->pos, ctx.rx, sim_.now());
  if (!was_known && table_.find(pkt.src) != nullptr) {
    log_event(EventCode::kNeighborAdded, pkt.src);
  }
  // If the sender hears us, its digest tells us our outgoing quality.
  for (const auto& d : beacon->digest) {
    if (d.addr == cfg_.address) {
      table_.record_outgoing(pkt.src, d.lqi, sim_.now());
      break;
    }
  }
}

void Node::register_process(Process* p) {
  assert(p != nullptr);
  processes_.push_back(p);
}

void Node::unregister_process(Process* p) {
  std::erase(processes_, p);
}

Process* Node::find_process(std::string_view name) const {
  for (Process* p : processes_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

void Node::set_location_hint(net::Addr addr, phy::Position pos) {
  location_hints_[addr] = pos;
}

std::optional<phy::Position> Node::locate(net::Addr addr) const {
  if (addr == cfg_.address) return cfg_.position;
  if (const NeighborEntry* e = table_.find(addr)) return e->pos;
  const auto it = location_hints_.find(addr);
  if (it != location_hints_.end()) return it->second;
  return std::nullopt;
}

}  // namespace liteview::kernel
