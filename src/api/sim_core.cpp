#include "api/sim_core.hpp"

#include "api/http.hpp"
#include "chaos/shell.hpp"
#include "util/strings.hpp"

namespace liteview::api {
namespace {

/// Stable event names for the SSE stream. New message types fall back
/// to a numeric name, so the stream stays decodable (and deterministic)
/// across protocol growth.
[[nodiscard]] std::string event_name(lv::MsgType type) {
  switch (type) {
    case lv::MsgType::kStatus: return "status";
    case lv::MsgType::kRadioConfig: return "radio-config";
    case lv::MsgType::kNbrTable: return "neighbor-table";
    case lv::MsgType::kPingResult: return "ping-result";
    case lv::MsgType::kTracerouteReport: return "hop";
    case lv::MsgType::kTracerouteDone: return "traceroute-done";
    case lv::MsgType::kProcessList: return "process-list";
    case lv::MsgType::kLogData: return "log-data";
    case lv::MsgType::kEnergy: return "energy";
    case lv::MsgType::kNetstatData: return "netstat";
    case lv::MsgType::kScanData: return "scan-data";
    default:
      return util::format("mgmt-%02x", static_cast<unsigned>(type));
  }
}

}  // namespace

std::string ExecResult::concat() const {
  std::string out;
  for (const auto& f : frames) out += f;
  return out;
}

SimCore::SimCore(Factory factory) : factory_(std::move(factory)) {
  tb_ = factory_();
}

SimCore::~SimCore() = default;

SimCore::SessionState& SimCore::state_for(std::uint32_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    SessionState st;
    testbed::Testbed& tb = *tb_;
    st.interpreter = std::make_unique<lv::CommandInterpreter>(
        tb.workstation(), [&tb](net::Addr a) -> std::optional<phy::Position> {
          if (a == 0 || a > tb.size()) return std::nullopt;
          return tb.node(a - 1).position();
        });
    st.interpreter->set_diagnostics(tb.recorder(), [&tb](std::string meta) {
      return tb.checkpoint(std::move(meta));
    });
    chaos::install_shell_commands(tb, *st.interpreter);
    it = sessions_.emplace(session_id, std::move(st)).first;
  }
  return it->second;
}

ExecResult SimCore::execute(std::uint32_t session_id,
                            const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  return execute_locked(session_id, line);
}

ExecResult SimCore::execute_locked(std::uint32_t session_id,
                                   const std::string& line) {
  SessionState& st = state_for(session_id);
  log_.push_back(CommandLogEntry{session_id, line});

  ExecResult result;
  // Tap every management response that reaches the workstation while
  // this command runs: each becomes one SSE frame carrying the lv::
  // codec bytes (hex) stamped with its sim-time arrival.
  lv::Workstation& ws = tb_->workstation();
  ws.set_mgmt_observer([&result, &st](lv::MsgType type,
                                      const std::vector<std::uint8_t>& body,
                                      sim::SimTime arrival) {
    SseEvent ev;
    ev.id = st.next_event_id++;
    ev.event = event_name(type);
    ev.data = util::format("%lld ", static_cast<long long>(arrival.nanoseconds())) +
              to_hex(body);
    result.frames.push_back(sse_encode(ev));
  });
  std::string transcript;
  try {
    transcript = st.interpreter->execute(line);
  } catch (const std::exception& e) {
    transcript = util::format("error: %s\n", e.what());
  }
  ws.set_mgmt_observer(nullptr);

  SseEvent tr;
  tr.id = st.next_event_id++;
  tr.event = "transcript";
  tr.data = transcript;
  result.frames.push_back(sse_encode(tr));
  SseEvent done;
  done.id = st.next_event_id++;
  done.event = "done";
  done.data = util::format("%lld", static_cast<long long>(tb_->sim().now().nanoseconds()));
  result.frames.push_back(sse_encode(done));
  return result;
}

void SimCore::close_session(std::uint32_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

std::vector<CommandLogEntry> SimCore::command_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

std::vector<std::uint8_t> SimCore::snapshot_bytes(std::string meta) {
  std::lock_guard<std::mutex> lock(mu_);
  return trace::serialize(tb_->checkpoint(std::move(meta)));
}

std::string SimCore::snapshot_describe(std::string meta) {
  std::lock_guard<std::mutex> lock(mu_);
  return trace::describe(tb_->checkpoint(std::move(meta)));
}

std::string SimCore::topology_text() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = util::format("network %s nodes %zu t %lld\n",
                                 tb_->book().network().c_str(), tb_->size(),
                                 static_cast<long long>(tb_->sim().now().nanoseconds()));
  for (std::size_t i = 0; i < tb_->size(); ++i) {
    const kernel::Node& n = tb_->node(i);
    const auto name = tb_->book().name_of(tb_->addr(i));
    out += util::format("node %u %s %.2f %.2f\n", tb_->addr(i),
                        name ? name->c_str() : "?", n.position().x,
                        n.position().y);
    for (const auto& e : n.neighbors().entries()) {
      out += util::format("  link %u -> %u lqi %.1f/%.1f rssi %.1f%s\n",
                          tb_->addr(i), e.addr, e.lqi_ewma, e.lqi_out,
                          e.rssi_ewma, e.blacklisted ? " [blacklisted]" : "");
    }
  }
  return out;
}

std::size_t SimCore::node_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return tb_->size();
}

std::uint64_t SimCore::commands_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

std::map<std::uint32_t, std::string> SimCore::replay(
    const Factory& factory, const std::vector<CommandLogEntry>& log) {
  SimCore core(factory);
  std::map<std::uint32_t, std::string> streams;
  for (const auto& entry : log) {
    streams[entry.session_id] += core.execute(entry.session_id, entry.line)
                                     .concat();
  }
  return streams;
}

}  // namespace liteview::api
