#include "liteview/ping.hpp"

#include <algorithm>
#include <cassert>

#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace liteview::lv {
namespace {

constexpr std::uint8_t kTypeProbe = 0;
constexpr std::uint8_t kTypeReply = 1;
constexpr std::size_t kProbeHeader = 6;  // type, round, id(2), port, len

struct ProbeMsg {
  std::uint8_t round;
  std::uint16_t probe_id;
  net::Port routing_port;  // 0 = direct
  std::uint8_t length;
};

std::vector<std::uint8_t> encode_probe(const ProbeMsg& p) {
  util::ByteWriter w(p.length);
  w.u8(kTypeProbe);
  w.u8(p.round);
  w.u16(p.probe_id);
  w.u8(p.routing_port);
  w.u8(p.length);
  // Zero-fill to the requested probe payload length.
  while (w.size() < p.length) w.u8(0);
  return std::move(w).take();
}

std::optional<ProbeMsg> decode_probe(std::span<const std::uint8_t> s) {
  if (s.size() < kProbeHeader || s[0] != kTypeProbe) return std::nullopt;
  util::ByteReader r(s.subspan(1));
  ProbeMsg p;
  p.round = r.u8();
  p.probe_id = r.u16();
  p.routing_port = r.u8();
  p.length = r.u8();
  if (!r.ok()) return std::nullopt;
  return p;
}

struct ReplyMsg {
  std::uint8_t round;
  std::uint16_t probe_id;
  std::uint8_t lqi_fwd;
  std::int8_t rssi_fwd;
  std::uint8_t queue_remote;
  std::vector<net::PadEntry> hops_fwd;  // echo of the probe's padding
};

std::vector<std::uint8_t> encode_reply(const ReplyMsg& m) {
  util::ByteWriter w;
  w.u8(kTypeReply);
  w.u8(m.round);
  w.u16(m.probe_id);
  w.u8(m.lqi_fwd);
  w.i8(m.rssi_fwd);
  w.u8(m.queue_remote);
  w.u8(static_cast<std::uint8_t>(m.hops_fwd.size()));
  for (const auto& h : m.hops_fwd) {
    w.u8(h.lqi);
    w.i8(h.rssi);
  }
  return std::move(w).take();
}

std::optional<ReplyMsg> decode_reply(std::span<const std::uint8_t> s) {
  if (s.empty() || s[0] != kTypeReply) return std::nullopt;
  util::ByteReader r(s.subspan(1));
  ReplyMsg m;
  m.round = r.u8();
  m.probe_id = r.u16();
  m.lqi_fwd = r.u8();
  m.rssi_fwd = r.i8();
  m.queue_remote = r.u8();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    net::PadEntry e;
    e.lqi = r.u8();
    e.rssi = r.i8();
    m.hops_fwd.push_back(e);
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace

routing::RoutingProtocol* find_routing(kernel::Node& node, net::Port port) {
  for (kernel::Process* p : node.processes()) {
    auto* r = dynamic_cast<routing::RoutingProtocol*>(p);
    if (r != nullptr && r->port() == port && r->running()) return r;
  }
  return nullptr;
}

std::optional<PingParams> parse_ping_params(const std::string& buffer,
                                            const kernel::AddressBook* book) {
  const auto cl = util::parse_command_line("ping " + buffer);
  if (cl.positional.empty()) return std::nullopt;
  PingParams p;
  // Destination: deployment name first, numeric address as fallback.
  if (book != nullptr) {
    if (const auto a = book->resolve(cl.positional[0])) {
      p.dst = *a;
    } else if (const auto v = util::parse_int(cl.positional[0])) {
      p.dst = static_cast<net::Addr>(*v);
    } else {
      return std::nullopt;
    }
  } else if (const auto v = util::parse_int(cl.positional[0])) {
    p.dst = static_cast<net::Addr>(*v);
  } else {
    return std::nullopt;
  }
  const auto rounds = cl.option_int_or("round", 1);
  const auto length = cl.option_int_or("length", 32);
  if (!rounds || !length || *rounds < 1 || *rounds > 100 || *length < 0 ||
      *length > static_cast<std::int64_t>(net::kPayloadBudget)) {
    return std::nullopt;
  }
  p.rounds = static_cast<int>(*rounds);
  p.length = std::max<int>(static_cast<int>(*length),
                           static_cast<int>(kProbeHeader));
  if (const auto port = cl.option_int("port")) {
    if (*port < 1 || *port > 255) return std::nullopt;
    p.routing_port = static_cast<net::Port>(*port);
  }
  return p;
}

PingProcess::PingProcess(kernel::Node& node)
    : kernel::Process(node, "ping", kernel::Footprint{2148, 278}),
      jitter_rng_(node.simulator().rng_root().stream("lv.ping.jitter",
                                                     node.address())) {}

PingProcess::~PingProcess() {
  if (subscribed_) PingProcess::stop();
}

void PingProcess::start() {
  if (!subscribed_) {
    const bool ok = node().stack().subscribe(
        net::kPortPing,
        [this](const net::NetPacket& pkt, const net::LinkContext& ctx) {
          on_packet(pkt, ctx);
        });
    assert(ok && "ping port already taken");
    (void)ok;
    subscribed_ = true;
  }
  set_running(true);

  // Client role when the kernel parameter buffer holds parameters
  // (the paper's parameter-passing syscall).
  const std::string& params = node().param_buffer();
  if (!params.empty() && !active_) {
    if (const auto parsed =
            parse_ping_params(params, node().address_book())) {
      run(*parsed, done_);
    }
  }
}

void PingProcess::stop() {
  round_timer_.cancel();
  active_ = false;
  if (subscribed_) {
    node().stack().unsubscribe(net::kPortPing);
    subscribed_ = false;
  }
  set_running(false);
}

void PingProcess::run(const PingParams& params, DoneCallback done) {
  assert(!active_ && "ping client already running");
  params_ = params;
  done_ = std::move(done);
  active_ = true;
  current_round_ = 0;
  result_ = PingResultMsg{};
  result_.target = params.dst;
  result_.rounds = static_cast<std::uint8_t>(params.rounds);
  result_.payload_len = static_cast<std::uint8_t>(params.length);
  result_.power = node().pa_level();
  result_.channel = node().channel();
  if (!subscribed_) start();
  start_round();
}

void PingProcess::start_round() {
  // Small random dispatch jitter de-synchronizes concurrent ping clients
  // (and their timeout-aligned retries) probing the same responder.
  const std::uint8_t round_at_schedule = current_round_;
  node().simulator().schedule_in(
      sim::SimTime::us(jitter_rng_.uniform_int(100, 15'000)),
      [this, round_at_schedule] {
        if (active_ && current_round_ == round_at_schedule) send_probe();
      });
}

void PingProcess::send_probe() {
  ProbeMsg probe;
  probe.round = current_round_;
  probe.probe_id = next_probe_id_++;
  probe.routing_port = params_.routing_port.value_or(0);
  probe.length = static_cast<std::uint8_t>(params_.length);
  awaiting_probe_id_ = probe.probe_id;

  queue_local_at_send_ =
      static_cast<std::uint8_t>(node().mac().queue_depth());
  // T1 from the high-resolution sender-local timer (Fig. 3 step 1).
  t1_ns_ = node().timestamp_ns();

  bool sent = false;
  if (params_.routing_port) {
    if (auto* proto = find_routing(node(), *params_.routing_port)) {
      sent = proto->send(params_.dst, net::kPortPing, encode_probe(probe),
                         /*padding=*/true);
    }
  } else {
    net::NetPacket pkt;
    pkt.src = node().address();
    pkt.dst = params_.dst;
    pkt.port = net::kPortPing;
    pkt.ttl = 1;
    pkt.payload = encode_probe(probe);
    sent = node().stack().send_link(params_.dst, pkt);
  }

  const std::uint16_t expect = probe.probe_id;
  round_timer_.cancel();
  round_timer_ =
      node().simulator().schedule_in(params_.round_timeout, [this, expect] {
        if (!active_ || awaiting_probe_id_ != expect) return;
        PingRoundMsg lost;
        lost.round = current_round_;
        lost.received = false;
        finish_round(std::move(lost));
      });
  if (!sent) {
    // No route / queue full: the timeout path will record the loss.
  }
}

void PingProcess::on_packet(const net::NetPacket& pkt,
                            const net::LinkContext& ctx) {
  if (pkt.payload.empty()) return;
  if (pkt.payload[0] == kTypeProbe) {
    handle_probe(pkt, ctx);
  } else if (pkt.payload[0] == kTypeReply) {
    handle_reply(pkt, ctx);
  }
}

void PingProcess::handle_probe(const net::NetPacket& pkt,
                               const net::LinkContext& ctx) {
  const auto probe = decode_probe(pkt.payload);
  // Ignore loopback echoes of our own probes, but *do* answer probes that
  // arrived through a routing protocol (those are delivered locally by
  // the routing layer after the final hop).
  if (!probe || pkt.src == node().address()) return;

  ReplyMsg reply;
  reply.round = probe->round;
  reply.probe_id = probe->probe_id;
  // Link quality of the incoming probe "is only available after the
  // packet is received" — measured here, at the receiver (Fig. 3 step 3).
  // For routed probes the final hop's measurement is the last padding
  // entry (stamped by the routing layer on reception).
  if (ctx.local && !pkt.padding.empty()) {
    reply.lqi_fwd = pkt.padding.back().lqi;
    reply.rssi_fwd = pkt.padding.back().rssi;
  } else {
    reply.lqi_fwd = ctx.rx.lqi;
    reply.rssi_fwd = ctx.rx.rssi_reg;
  }
  reply.queue_remote = static_cast<std::uint8_t>(node().mac().queue_depth());
  // Multi-hop: the probe accumulated per-hop padding on its way here;
  // echo it in the reply payload so the sender can print the full path.
  reply.hops_fwd = pkt.padding;

  if (probe->routing_port != 0) {
    if (auto* proto = find_routing(node(), probe->routing_port)) {
      proto->send(pkt.src, net::kPortPing, encode_reply(reply),
                  /*padding=*/true);
    }
    return;
  }
  net::NetPacket out;
  out.src = node().address();
  out.dst = pkt.src;
  out.port = net::kPortPing;
  out.ttl = 1;
  out.payload = encode_reply(reply);
  node().stack().send_link(pkt.src, out);
}

void PingProcess::handle_reply(const net::NetPacket& pkt,
                               const net::LinkContext& ctx) {
  if (!active_) return;
  const auto reply = decode_reply(pkt.payload);
  if (!reply || reply->probe_id != awaiting_probe_id_) return;

  // T2 - T1 on the same clock (Fig. 3 steps 4-5).
  const std::int64_t rtt_ns = node().timestamp_ns() - t1_ns_;

  PingRoundMsg round;
  round.round = reply->round;
  round.received = true;
  round.rtt_us = static_cast<std::uint32_t>(rtt_ns / 1'000);
  round.lqi_fwd = reply->lqi_fwd;
  round.rssi_fwd = reply->rssi_fwd;
  round.queue_remote = reply->queue_remote;
  round.queue_local = queue_local_at_send_;
  // Backward-link measurements come from the reply's own reception.
  if (pkt.padding.empty()) {
    round.lqi_bwd = ctx.rx.lqi;
    round.rssi_bwd = ctx.rx.rssi_reg;
  } else {
    // Multi-hop: last padding entry is the final (closest) hop.
    round.lqi_bwd = pkt.padding.back().lqi;
    round.rssi_bwd = pkt.padding.back().rssi;
  }
  round.hops_fwd = reply->hops_fwd;
  round.hops_bwd = pkt.padding;
  if (round.hops_fwd.size() == 1 && round.hops_bwd.size() <= 1) {
    // Single-hop over a routing protocol: report as plain one-hop.
    round.lqi_fwd = round.hops_fwd[0].lqi;
    round.rssi_fwd = round.hops_fwd[0].rssi;
  }
  finish_round(std::move(round));
}

void PingProcess::finish_round(PingRoundMsg round) {
  round_timer_.cancel();
  awaiting_probe_id_ = 0;
  result_.rounds_data.push_back(std::move(round));
  ++current_round_;
  if (current_round_ < static_cast<std::uint8_t>(params_.rounds)) {
    start_round();
    return;
  }
  finish_all();
}

void PingProcess::finish_all() {
  active_ = false;
  if (done_) done_(result_);
}

}  // namespace liteview::lv
