// Uniform spatial hash grid over radio positions.
//
// Buckets radios into square cells so the medium can enumerate "everything
// within r meters of here" by scanning O((r/cell)^2) cells instead of every
// radio in the deployment. Queries are conservative by construction: they
// return every radio in any cell that intersects the disc (possibly a few
// outside it), never missing one inside — the caller applies the exact
// distance test. Purely geometric; all delivery semantics stay in Medium.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "phy/propagation.hpp"

namespace liteview::phy {

/// Radio identifier within a Medium (dense, assigned at attach()).
using RadioId = std::uint32_t;
inline constexpr RadioId kInvalidRadio =
    std::numeric_limits<RadioId>::max();

class SpatialGrid {
 public:
  /// `cell_size_m` trades memory for query precision; the medium sizes it
  /// at the propagation model's max range so a query touches ~9 cells.
  explicit SpatialGrid(double cell_size_m);

  void insert(RadioId id, Position pos);
  /// `pos` must be the position the id was inserted/moved to last.
  void remove(RadioId id, Position pos);
  void move(RadioId id, Position from, Position to);

  /// Append every radio whose cell intersects the disc (center, radius)
  /// to `out` (without clearing it). Radios appear at most once.
  void query(Position center, double radius_m,
             std::vector<RadioId>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] double cell_size_m() const noexcept { return cell_; }

 private:
  using CellKey = std::uint64_t;

  [[nodiscard]] std::int32_t coord(double v) const noexcept;
  [[nodiscard]] static CellKey pack(std::int32_t cx,
                                    std::int32_t cy) noexcept {
    return (static_cast<CellKey>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }

  double cell_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, std::vector<RadioId>> cells_;
};

}  // namespace liteview::phy
