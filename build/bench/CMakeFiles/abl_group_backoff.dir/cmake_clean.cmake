file(REMOVE_RECURSE
  "CMakeFiles/abl_group_backoff.dir/abl_group_backoff.cpp.o"
  "CMakeFiles/abl_group_backoff.dir/abl_group_backoff.cpp.o.d"
  "abl_group_backoff"
  "abl_group_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_group_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
