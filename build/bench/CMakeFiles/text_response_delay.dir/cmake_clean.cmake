file(REMOVE_RECURSE
  "CMakeFiles/text_response_delay.dir/text_response_delay.cpp.o"
  "CMakeFiles/text_response_delay.dir/text_response_delay.cpp.o.d"
  "text_response_delay"
  "text_response_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_response_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
