file(REMOVE_RECURSE
  "CMakeFiles/lv_sim.dir/simulator.cpp.o"
  "CMakeFiles/lv_sim.dir/simulator.cpp.o.d"
  "liblv_sim.a"
  "liblv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
