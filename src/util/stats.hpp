// Online summary statistics (Welford) and percentile accumulation,
// used by benches and the testbed's experiment accounting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace liteview::util {

/// Numerically stable running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& o) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples for exact percentile queries; fine at bench scales.
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// p in [0,100]; nearest-rank. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace liteview::util
