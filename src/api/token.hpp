// Session token format for the control plane.
//
//   lvs-<8 hex session id>-<16 hex secret>
//
// The token is the whole credential: the id routes the request to its
// session, the secret authenticates it. Parsing is strict (exact
// length, exact delimiters, lowercase hex) so a fuzzer can only ever
// produce "valid token" or "reject", never a partially-initialized
// credential.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace liteview::api {

struct SessionToken {
  std::uint32_t session_id = 0;
  std::uint64_t secret = 0;

  bool operator==(const SessionToken&) const = default;
};

inline constexpr std::size_t kTokenLength = 4 + 8 + 1 + 16;  // "lvs-" id '-' secret

[[nodiscard]] std::string format_token(const SessionToken& t);
[[nodiscard]] std::optional<SessionToken> parse_token(std::string_view s);

/// "Bearer <token>" → token, per the Authorization header. Strict: one
/// space, nothing trailing.
[[nodiscard]] std::optional<SessionToken> parse_bearer(std::string_view header);

}  // namespace liteview::api
