// Deployment builder: simulator + medium + nodes + LiteView suite +
// routing protocols + workstation, wired together like the paper's
// 30-node MicaZ testbed.
//
// Determinism: one seed drives everything; two Testbeds with the same
// config produce bit-identical runs. Independent replications (different
// seeds) can run in parallel threads because a Testbed shares nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plane.hpp"
#include "kernel/naming.hpp"
#include "kernel/node.hpp"
#include "liteview/interpreter.hpp"
#include "liteview/runtime_controller.hpp"
#include "phy/medium.hpp"
#include "routing/flooding.hpp"
#include "routing/geographic.hpp"
#include "routing/tree.hpp"
#include "sim/simulator.hpp"
#include "testbed/accounting.hpp"
#include "trace/checkpoint.hpp"
#include "trace/flight_recorder.hpp"

namespace liteview::testbed {

struct TestbedConfig {
  std::uint64_t seed = 1;
  phy::PropagationConfig propagation;
  mac::MacConfig mac;
  kernel::NeighborTableConfig neighbors;
  sim::SimTime beacon_period = sim::SimTime::sec(2);
  lv::ControllerConfig controller;
  lv::WorkstationConfig workstation;

  bool install_suite = true;  ///< LiteView on every node
  bool with_geographic = true;
  bool with_flooding = false;
  bool with_tree = false;
  net::Addr tree_root = 1;

  /// Spatial culling in the medium (see phy::Medium::set_spatial_culling).
  /// Semantically invisible either way; off forces the O(n) scan for
  /// determinism audits and scaling benchmarks.
  bool spatial_culling = true;

  /// Per-link gain memoization in the medium (see phy::Medium::
  /// set_gain_cache). Exact memoization — byte-identical traces either
  /// way; off forces recomputation per use for determinism audits.
  bool link_gain_cache = true;

  /// Batched SIMD kernels in the medium (see phy::Medium::set_simd).
  /// Bit-exact scalar fallback — byte-identical traces either way; off
  /// forces the scalar path for determinism audits and the parity suite.
  bool simd = true;

  /// Sharded execution (DESIGN.md §15). 0 = off: the classic serial
  /// event loop, byte-identical with older builds. N >= 1 installs a
  /// sim::ShardEngine with N spatial cells and N worker threads and
  /// switches the medium's corruption draws to the per-reception hash —
  /// the sharded determinism domain: results are byte-identical for any
  /// N in a domain (tests/test_determinism.cpp holds shards=1/2/4/8
  /// against each other), but not with shards=0. Clamped to
  /// sim::ShardEngine::kMaxCells.
  int shards = 0;

  /// Attach a flight recorder at construction and wire every layer's
  /// recording hooks into it (event loop, radios, MACs, stacks, routing,
  /// fault plane). Off = hooks stay null checks; no rings are allocated.
  bool flight_recorder = false;
  /// Per-source ring capacity (0 = FlightRecorder::kDefaultRingBytes).
  std::size_t flight_recorder_ring_bytes = 0;

  phy::PaLevel initial_power = phy::kDefaultPaLevel;
  phy::Channel initial_channel = phy::kDefaultChannel;
  /// The workstation stands ~1 m from the managed node; it whispers at
  /// low power so management traffic doesn't interfere with the mesh.
  phy::PaLevel workstation_power = 3;

  /// Beacon convergence time executed by warm_up().
  sim::SimTime warmup = sim::SimTime::sec(6);
};

/// Spacing at which the *mean* received power of an adjacent link equals
/// sensitivity + margin_db for the given PA level (used to build line
/// topologies where only adjacent nodes are connected).
[[nodiscard]] double adjacency_spacing_m(const phy::PropagationConfig& prop,
                                         phy::PaLevel level,
                                         double margin_db);

class Testbed {
 public:
  /// Line of n nodes spaced `spacing_m` apart; node 1 at the origin.
  static std::unique_ptr<Testbed> line(int n, double spacing_m,
                                       const TestbedConfig& cfg = {});

  /// rows × cols grid.
  static std::unique_ptr<Testbed> grid(int rows, int cols, double spacing_m,
                                       const TestbedConfig& cfg = {});

  /// n nodes uniformly random in a square of the given side, minimum
  /// pairwise spacing enforced by dart throwing.
  static std::unique_ptr<Testbed> random_square(int n, double side_m,
                                                double min_spacing_m,
                                                const TestbedConfig& cfg = {});

  /// The paper's evaluation testbed, distilled: a line of `n` nodes in an
  /// indoor environment (path-loss exponent 4), spaced so that at PA
  /// level 10 only *adjacent* nodes share usable links (8-hop diameter
  /// for n = 9), with quality-gated neighbor admission and MAC timing
  /// calibrated to the paper's ~4.7 ms single-hop ping RTT. Fig. 5/6/7
  /// benches and the integration tests run on this.
  static std::unique_ptr<Testbed> paper_line(int n, std::uint64_t seed = 1);

  /// paper_line with a caller-customized config (extra protocols, no
  /// suite, ...); cfg.seed seeds the site-survey scan.
  static std::unique_ptr<Testbed> surveyed_line(int n, TestbedConfig cfg);

  /// Config used by paper_line (exposed so benches can tweak one knob).
  [[nodiscard]] static TestbedConfig paper_config(std::uint64_t seed);
  /// Node spacing used by paper_line.
  [[nodiscard]] static double paper_spacing_m();

  /// Grid variant of the paper testbed: spacing shrunk so diagonal links
  /// are solid (8-connected grid) while 2-stride links stay out of reach;
  /// deployments are site-surveyed like paper_line.
  static std::unique_ptr<Testbed> paper_grid(int rows, int cols,
                                             std::uint64_t seed = 1);
  static std::unique_ptr<Testbed> surveyed_grid(int rows, int cols,
                                                TestbedConfig cfg);
  [[nodiscard]] static double paper_grid_spacing_m();

  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] phy::Medium& medium() noexcept { return *medium_; }
  /// The shard engine (null unless cfg.shards >= 1).
  [[nodiscard]] sim::ShardEngine* shard_engine() noexcept {
    return shard_engine_.get();
  }
  [[nodiscard]] kernel::AddressBook& book() noexcept { return book_; }
  [[nodiscard]] PacketAccounting& accounting() noexcept {
    return *accounting_;
  }
  /// The deployment's fault plane. Inert until faults are scripted onto
  /// it (zero RNG draws, zero per-frame work), so fault-free runs stay
  /// bit-identical with older builds.
  [[nodiscard]] fault::FaultPlane& fault() noexcept { return *fault_; }
  /// Per-node fault/recovery counters: the fault plane's view (crashes,
  /// reboots, injected drops) merged with the node's transport recovery
  /// counters (retransmissions, timeouts, failures) — what benches use
  /// to report delivery ratio and recovery cost per scenario.
  struct NodeFaultReport {
    fault::FaultStats faults;
    lv::ReliableStats transport;
  };
  [[nodiscard]] NodeFaultReport fault_report(std::size_t i);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  /// Node by 0-based index; addresses are index + 1.
  [[nodiscard]] kernel::Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] net::Addr addr(std::size_t i) const {
    return static_cast<net::Addr>(i + 1);
  }
  [[nodiscard]] kernel::Node& node_by_addr(net::Addr a) {
    return *nodes_.at(a - 1);
  }

  [[nodiscard]] lv::NodeSuite& suite(std::size_t i) { return *suites_.at(i); }
  [[nodiscard]] routing::GeographicForwarding* geographic(std::size_t i) {
    return i < geo_.size() ? geo_[i].get() : nullptr;
  }
  [[nodiscard]] routing::Flooding* flooding(std::size_t i) {
    return i < flood_.size() ? flood_[i].get() : nullptr;
  }
  [[nodiscard]] routing::TreeRouting* tree(std::size_t i) {
    return i < tree_.size() ? tree_[i].get() : nullptr;
  }

  [[nodiscard]] lv::Workstation& workstation() noexcept { return *ws_; }
  [[nodiscard]] lv::CommandInterpreter& shell() noexcept { return *shell_; }

  /// Run the simulator for the configured warm-up so neighbor tables and
  /// routing gradients converge before experiments start.
  void warm_up();

  /// Set every node's PA level (deployment-wide power experiment).
  void set_all_power(phy::PaLevel level);

  [[nodiscard]] const TestbedConfig& config() const noexcept { return cfg_; }

  // ---- flight recorder -------------------------------------------------
  /// The deployment's recorder (null unless cfg.flight_recorder or a
  /// caller attached one via set_flight_recorder).
  [[nodiscard]] trace::FlightRecorder* recorder() noexcept {
    return recorder_ != nullptr ? recorder_.get() : external_recorder_;
  }
  /// Wire `rec` (or nullptr to detach) through every layer: the event
  /// loop, each radio/MAC/stack, every routing protocol, the fault plane
  /// and the workstation. Sniffers added later self-register.
  void set_flight_recorder(trace::FlightRecorder* rec);

  // ---- sniffer radios --------------------------------------------------
  /// What a sniffer overheard (aggregates; per-frame detail goes to the
  /// flight recorder's kSniffRx records when one is attached).
  struct SnifferLog {
    std::uint64_t frames = 0;
    std::uint64_t crc_failures = 0;
    std::uint64_t bytes = 0;
  };
  /// Attach a promiscuous receive-only radio at `pos`. Byte-invisible to
  /// the simulation (phy::Medium::attach_sniffer); returns its index.
  std::size_t add_sniffer(phy::Position pos,
                          phy::Channel channel = phy::kDefaultChannel);
  [[nodiscard]] std::size_t sniffer_count() const noexcept;
  [[nodiscard]] const SnifferLog& sniffer_log(std::size_t i) const;

  // ---- checkpoint / restore --------------------------------------------
  /// Snapshot the whole deployment: seed, clock, event counters, and one
  /// verification section per component (sim, medium, fault plane, each
  /// node's MAC+stack+power, the workstation). `meta` should describe how
  /// to rebuild the deployment (scenario text, builder call).
  [[nodiscard]] trace::Checkpoint checkpoint(std::string meta = {}) const;

  /// Rebuild the world with `rebuild` (which must reconstruct the same
  /// deployment + scripted faults the checkpoint came from), fast-forward
  /// deterministically to cp.t_ns, and byte-verify every section. Returns
  /// the restored testbed, or nullptr with `error` naming the first
  /// diverged section.
  static std::unique_ptr<Testbed> restore(
      const trace::Checkpoint& cp,
      const std::function<std::unique_ptr<Testbed>()>& rebuild,
      std::string* error = nullptr);

 private:
  Testbed(const TestbedConfig& cfg, std::vector<phy::Position> positions);

  TestbedConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<phy::Medium> medium_;
  /// Declared after sim_/medium_ so it is destroyed first (it detaches
  /// itself from the simulator's run loop on destruction).
  std::unique_ptr<sim::ShardEngine> shard_engine_;
  std::unique_ptr<PacketAccounting> accounting_;
  std::unique_ptr<fault::FaultPlane> fault_;
  kernel::AddressBook book_;
  std::vector<std::unique_ptr<kernel::Node>> nodes_;
  std::vector<std::unique_ptr<routing::GeographicForwarding>> geo_;
  std::vector<std::unique_ptr<routing::Flooding>> flood_;
  std::vector<std::unique_ptr<routing::TreeRouting>> tree_;
  std::vector<std::unique_ptr<lv::NodeSuite>> suites_;
  std::unique_ptr<lv::Workstation> ws_;
  std::unique_ptr<lv::CommandInterpreter> shell_;

  struct Sniffer;
  std::vector<std::unique_ptr<Sniffer>> sniffers_;
  std::unique_ptr<trace::FlightRecorder> recorder_;  ///< owned (config on)
  trace::FlightRecorder* external_recorder_ = nullptr;
};

}  // namespace liteview::testbed
