// End-to-end smoke tests: bring up a testbed, run the paper's commands.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace liteview {
namespace {

TEST(Smoke, TwoNodePingOverShell) {
  auto tb = testbed::Testbed::paper_line(2, 7);
  tb->warm_up();

  auto& shell = tb->shell();
  ASSERT_TRUE(shell.cd("192.168.0.1"));
  EXPECT_EQ(shell.pwd(), "/sn01/192.168.0.1");

  const std::string out = shell.execute("ping 192.168.0.2 round=1 length=32");
  SCOPED_TRACE(out);
  EXPECT_NE(out.find("Pinging 192.168.0.2 with 1 packets"), std::string::npos);
  EXPECT_NE(out.find("RTT = "), std::string::npos);
  EXPECT_NE(out.find("Received = 1"), std::string::npos);
}

TEST(Smoke, LineTracerouteOverGeographic) {
  auto tb = testbed::Testbed::paper_line(4, 11);
  tb->warm_up();

  auto& shell = tb->shell();
  ASSERT_TRUE(shell.cd("192.168.0.1"));
  const std::string out =
      shell.execute("traceroute 192.168.0.4 round=1 length=32 port=10");
  SCOPED_TRACE(out);
  EXPECT_NE(out.find("Name of protocol: geographic forwarding"),
            std::string::npos);
  EXPECT_NE(out.find("Reply from 192.168.0.4"), std::string::npos);
  EXPECT_NE(out.find("Received = 1"), std::string::npos);
}

TEST(Smoke, NeighborListAndRadioConfig) {
  auto tb = testbed::Testbed::paper_line(3, 3);
  tb->warm_up();

  auto& shell = tb->shell();
  ASSERT_TRUE(shell.cd("192.168.0.2"));
  shell.execute("neighborsetup");
  const std::string nbrs = shell.execute("list");
  SCOPED_TRACE(nbrs);
  EXPECT_NE(nbrs.find("192.168.0.1"), std::string::npos);
  EXPECT_NE(nbrs.find("192.168.0.3"), std::string::npos);
  shell.execute("exit");

  const std::string power = shell.execute("power");
  EXPECT_NE(power.find("Power = 10"), std::string::npos);
  const std::string chan = shell.execute("channel");
  EXPECT_NE(chan.find("Channel = 17"), std::string::npos);
}

}  // namespace
}  // namespace liteview
