file(REMOVE_RECURSE
  "liblv_testbed.a"
)
