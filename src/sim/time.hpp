// Simulated time.
//
// A strong 64-bit nanosecond tick type. The paper's ping command uses a
// "high-resolution, cycle-accurate timer" on the sender; nanosecond
// resolution subsumes that (a 7.37 MHz ATmega128 cycle is ~135 ns).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace liteview::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime ns(std::int64_t v) {
    return SimTime(v);
  }
  [[nodiscard]] static constexpr SimTime us(std::int64_t v) {
    return SimTime(v * 1'000);
  }
  [[nodiscard]] static constexpr SimTime ms(std::int64_t v) {
    return SimTime(v * 1'000'000);
  }
  [[nodiscard]] static constexpr SimTime sec(std::int64_t v) {
    return SimTime(v * 1'000'000'000);
  }
  /// From floating-point microseconds (PHY airtime math); rounds to ns.
  [[nodiscard]] static constexpr SimTime us_f(double v) {
    return SimTime(static_cast<std::int64_t>(v * 1'000.0 + 0.5));
  }

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double microseconds() const { return ns_ / 1e3; }
  [[nodiscard]] constexpr double milliseconds() const { return ns_ / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return ns_ / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ns_ * k); }

  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(INT64_MAX);
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }

  /// Human-readable rendering, e.g. "4.7 ms".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace liteview::sim
