// Per-source fixed-size binary ring buffers behind one recorder facade.
//
// Every instrumented component (the event loop, each radio, each MAC,
// each network stack, the fault plane) registers a *source* once at setup
// and gets back a dense ring index; the hot path then appends records
// through that index with zero hashing, zero allocation, and one shared
// monotone sequence counter that totally orders records across all rings.
//
// A ring holds raw encoded records (record.hpp) in a contiguous byte
// array. When full it evicts whole records from its head — the length
// prefix makes that a two-line loop — so a long run always keeps the most
// *recent* window per source, which is exactly what post-mortem diagnosis
// wants. `serialize()` snapshots every ring into one self-describing blob
// ("LVTR") that the reader, the diff tool, and the determinism gates all
// share.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hpp"

namespace liteview::trace {

/// Fixed-capacity byte ring holding length-prefixed encoded records.
/// Steady-state push never allocates: records are encoded to a stack
/// buffer and memcpy'd (possibly wrapping), and eviction only moves the
/// head index.
class Ring {
 public:
  explicit Ring(std::size_t capacity_bytes)
      : buf_(capacity_bytes < kMaxRecordBytes ? kMaxRecordBytes
                                              : capacity_bytes) {}

  /// Append `len` encoded bytes, evicting oldest records as needed.
  void push(const std::uint8_t* rec, std::size_t len) noexcept {
    while (size_ + len > buf_.size()) evict_one();
    std::size_t tail = wrap(head_ + size_);
    const std::size_t first = std::min(len, buf_.size() - tail);
    std::memcpy(buf_.data() + tail, rec, first);
    std::memcpy(buf_.data(), rec + first, len - first);
    size_ += len;
    ++count_;
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return buf_.size();
  }
  /// Records currently held.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Records evicted (overwritten) over the ring's lifetime.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Copy the ring's records, oldest first, into a flat byte vector.
  [[nodiscard]] std::vector<std::uint8_t> linearize() const {
    std::vector<std::uint8_t> out(size_);
    if (size_ == 0) return out;  // empty ring: no bytes to copy
    const std::size_t first = std::min(size_, buf_.size() - head_);
    std::memcpy(out.data(), buf_.data() + head_, first);
    std::memcpy(out.data() + first, buf_.data(), size_ - first);
    return out;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    count_ = 0;
    dropped_ = 0;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i >= buf_.size() ? i - buf_.size() : i;
  }

  void evict_one() noexcept {
    const std::size_t len = buf_[head_];  // records start with their length
    head_ = wrap(head_ + len);
    size_ -= len;
    --count_;
    ++dropped_;
  }

  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  ///< offset of the oldest record
  std::size_t size_ = 0;  ///< bytes in use
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The decoded form of one serialized ring (reader side).
struct SourceTrace {
  std::uint32_t source = 0;
  std::uint64_t dropped = 0;
  std::vector<Record> records;  ///< oldest first, `source` filled in
};

/// A fully parsed "LVTR" blob.
struct TraceFile {
  std::vector<SourceTrace> sources;  ///< in recorder registration order
};

class FlightRecorder {
 public:
  /// `ring_bytes` is the per-source ring capacity.
  explicit FlightRecorder(std::size_t ring_bytes = kDefaultRingBytes)
      : ring_bytes_(ring_bytes) {}

  static constexpr std::size_t kDefaultRingBytes = 64 * 1024;

  /// Cold path: register (or look up) the ring for `source`. Idempotent —
  /// calling twice with the same source returns the same index.
  [[nodiscard]] std::uint32_t register_source(std::uint32_t source);

  /// Hot path: encode and append one record. `ring_idx` must come from
  /// register_source. Never allocates.
  void append(std::uint32_t ring_idx, RecKind kind, std::int64_t t_ns,
              std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0,
              std::uint64_t d = 0) noexcept {
    if (!enabled_) return;
    std::uint8_t buf[kMaxRecordBytes];
    const std::size_t len =
        encode_record(buf, kind, t_ns, next_seq_++, a, b, c, d);
    rings_[ring_idx].ring.push(buf, len);
  }

  /// Runtime pause/resume — registration stays, appends become no-ops.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] std::uint64_t records_appended() const noexcept {
    return next_seq_;
  }
  [[nodiscard]] std::size_t source_count() const noexcept {
    return rings_.size();
  }

  /// Drop all recorded bytes and restart the global sequence at zero;
  /// registered sources are kept. Used when recording should start "now"
  /// (e.g. after a checkpoint restore) so two captures are comparable.
  void reset();

  /// Snapshot every ring into one self-describing blob:
  ///   "LVTR" u8 version  varint n_rings
  ///   then per ring: varint source  varint count  varint dropped
  ///                  varint payload_len  payload bytes
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a serialize() blob. nullopt on any malformation.
  [[nodiscard]] static std::optional<TraceFile> parse(
      std::span<const std::uint8_t> bytes);

  /// Render a parsed trace as one record per line (diagnostics, diffs).
  [[nodiscard]] static std::string dump(const TraceFile& tf);

 private:
  struct SourceRing {
    std::uint32_t source;
    Ring ring;
  };

  std::size_t ring_bytes_;
  bool enabled_ = true;
  std::uint64_t next_seq_ = 0;
  std::vector<SourceRing> rings_;
  std::unordered_map<std::uint32_t, std::uint32_t> index_;  // source → idx
};

}  // namespace liteview::trace
