// A sensor node: kernel services over the MAC + port stack.
//
// Owns the radio (CSMA MAC), the subscription-based communication stack,
// the kernel neighbor table with its beacon service, the process registry
// and the parameter-passing buffer. LiteView's runtime controller and the
// routing protocols are processes running against this surface; they
// never reach below it, matching the paper's layering.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/event_log.hpp"
#include "kernel/naming.hpp"
#include "kernel/neighbor_table.hpp"
#include "kernel/process.hpp"
#include "mac/csma.hpp"
#include "net/stack.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace liteview::kernel {

struct NodeConfig {
  net::Addr address = 0;
  std::string name;                 ///< e.g. "192.168.0.1"
  phy::Position position;
  mac::MacConfig mac;
  NeighborTableConfig neighbors;
  /// Beacon exchange period; the `update` command changes it at runtime.
  sim::SimTime beacon_period = sim::SimTime::sec(2);
  bool beaconing = true;
};

class Node {
 public:
  Node(sim::Simulator& sim, phy::Medium& medium, const NodeConfig& cfg);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ---- identity -------------------------------------------------------
  [[nodiscard]] net::Addr address() const noexcept { return cfg_.address; }
  [[nodiscard]] const std::string& name() const noexcept { return cfg_.name; }
  [[nodiscard]] phy::Position position() const noexcept {
    return cfg_.position;
  }
  /// Relocate the node (deployment adjustment / mobile workstation).
  void set_position(phy::Position pos) {
    cfg_.position = pos;
    mac_->set_position(pos);
  }

  // ---- layers ---------------------------------------------------------
  [[nodiscard]] mac::CsmaMac& mac() noexcept { return *mac_; }
  [[nodiscard]] net::CommStack& stack() noexcept { return *stack_; }
  [[nodiscard]] NeighborTable& neighbors() noexcept { return table_; }
  [[nodiscard]] const NeighborTable& neighbors() const noexcept {
    return table_;
  }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  // ---- syscalls -------------------------------------------------------
  /// High-resolution timestamp (the ping command's cycle-accurate timer).
  [[nodiscard]] std::int64_t timestamp_ns() const {
    return sim_.now().nanoseconds();
  }

  /// Kernel parameter buffer (Sec. IV-C4). An empty string models the
  /// "\0"-initial buffer of a parameterless process start.
  void set_param_buffer(std::string params) {
    param_buffer_ = std::move(params);
  }
  [[nodiscard]] const std::string& param_buffer() const noexcept {
    return param_buffer_;
  }

  /// Kernel event log (LiteOS's on-demand event logging service).
  [[nodiscard]] EventLog& event_log() noexcept { return event_log_; }
  [[nodiscard]] const EventLog& event_log() const noexcept {
    return event_log_;
  }
  void log_event(EventCode code, std::uint32_t arg = 0) {
    event_log_.append(code, arg, sim_.now());
  }

  /// Radio energy accounting (TX airtime + always-on listening).
  [[nodiscard]] double energy_tx_mj() const {
    return mac_->energy().tx_mj();
  }
  [[nodiscard]] double energy_listen_mj() const {
    return mac_->energy().listen_mj(mac_->energy_since(), sim_.now());
  }
  [[nodiscard]] double energy_total_mj() const {
    return energy_tx_mj() + energy_listen_mj();
  }

  /// Radio configuration syscalls (paper Sec. III-B1).
  void set_pa_level(phy::PaLevel level) {
    mac_->set_pa_level(level);
    log_event(EventCode::kPowerChanged, level);
  }
  [[nodiscard]] phy::PaLevel pa_level() const { return mac_->pa_level(); }
  void set_channel(phy::Channel ch);
  [[nodiscard]] phy::Channel channel() const { return mac_->channel(); }

  // ---- power lifecycle (fault plane) ----------------------------------
  /// Crash: the radio powers off (TX queue purged, receive path deaf),
  /// the neighbor table and other volatile kernel state are wiped, and
  /// the beacon service stops. In-flight messages are lost.
  void power_down();
  /// Reboot after a crash: radio back on, immediate beacon for fast
  /// rediscovery, regular beacon schedule restarted. Volatile state was
  /// lost at power_down time, as on a real mote.
  void power_up();
  [[nodiscard]] bool powered() const noexcept { return powered_; }

  // ---- beacon service -------------------------------------------------
  /// Change the beacon period at runtime (the `update` command).
  void set_beacon_period(sim::SimTime period);
  [[nodiscard]] sim::SimTime beacon_period() const noexcept {
    return cfg_.beacon_period;
  }
  /// Broadcast one beacon immediately (used at boot for fast discovery).
  void send_beacon();

  // ---- process registry -----------------------------------------------
  void register_process(Process* p);
  void unregister_process(Process* p);
  [[nodiscard]] Process* find_process(std::string_view name) const;
  [[nodiscard]] const std::vector<Process*>& processes() const noexcept {
    return processes_;
  }

  /// Shared deployment address book (set by the testbed); may be null.
  void set_address_book(const AddressBook* book) noexcept { book_ = book; }
  [[nodiscard]] const AddressBook* address_book() const noexcept {
    return book_;
  }

  /// Position lookup for geographic routing: consults the local beacon
  /// table first, then the deployment survey (address book side table).
  void set_location_hint(net::Addr addr, phy::Position pos);
  [[nodiscard]] std::optional<phy::Position> locate(net::Addr addr) const;

 private:
  void on_beacon(const net::NetPacket& pkt, const net::LinkContext& ctx);
  void schedule_beacons();
  void beacon_round();

  sim::Simulator& sim_;
  NodeConfig cfg_;
  std::unique_ptr<mac::CsmaMac> mac_;
  std::unique_ptr<net::CommStack> stack_;
  NeighborTable table_;
  std::string param_buffer_;
  std::vector<Process*> processes_;
  const AddressBook* book_ = nullptr;
  std::unordered_map<net::Addr, phy::Position> location_hints_;
  EventLog event_log_;
  util::RngStream beacon_rng_;
  sim::EventHandle beacon_timer_;
  bool powered_ = true;
};

}  // namespace liteview::kernel
