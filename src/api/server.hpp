// The diagnosis-as-a-service control plane server: HTTP/1.1 + SSE over
// a lock-protected SimCore.
//
// Threading model: N worker threads all poll/accept on one listening
// socket and serve their connection to completion (keep-alive loop) —
// no shared connection state, so the only cross-thread edges are the
// SessionManager map, per-session state, and the SimCore mutex. One
// sweeper thread evicts idle sessions. Command results are computed
// under the core lock but written to the socket after it is released
// (one chunked write per SSE frame), so a slow or stalled client can
// never hold the simulation hostage.
//
// Routes (auth = `Authorization: Bearer lvs-...` unless noted):
//   GET    /healthz                      liveness, no auth
//   POST   /v1/sessions                  create session (join token if
//                                        configured); 201 + token
//   GET    /v1/sessions/<id>             session info
//   DELETE /v1/sessions/<id>             close session
//   POST   /v1/sessions/<id>/command     body = one shell command line;
//                                        200 text/event-stream (chunked):
//                                        per-hop mgmt events, transcript,
//                                        done  |  429 when rate-limited
//   GET    /v1/snapshot                  serialized whole-sim checkpoint
//                                        (?meta=1 → text description)
//   GET    /v1/topology                  node/link-state text
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/http.hpp"
#include "api/session.hpp"
#include "api/sim_core.hpp"

namespace liteview::api {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  int worker_threads = 4;
  int listen_backlog = 512;
  /// Required (as the Bearer token) to create sessions when non-empty.
  std::string join_token;
  SessionManagerConfig sessions;
  HttpLimits limits;
  /// Per-socket receive/send timeout; a dead peer can stall one worker
  /// at most this long.
  std::chrono::milliseconds io_timeout{10'000};
  /// Idle-eviction sweep cadence (0 disables the sweeper thread).
  std::chrono::milliseconds sweep_interval{1'000};
};

class ControlPlaneServer {
 public:
  ControlPlaneServer(SimCore& core, ServerConfig cfg);
  ~ControlPlaneServer();
  ControlPlaneServer(const ControlPlaneServer&) = delete;
  ControlPlaneServer& operator=(const ControlPlaneServer&) = delete;

  /// Bind + listen + spawn workers. False (with *err set) on failure.
  bool start(std::string* err = nullptr);
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] SessionManager& sessions() noexcept { return manager_; }
  [[nodiscard]] SimCore& core() noexcept { return core_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t commands = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t parse_errors = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  void worker_loop();
  void sweeper_loop();
  void serve_connection(int fd);
  /// Handles one parsed request. Writes the whole response (possibly
  /// several chunked writes for SSE) to `fd`; returns false when the
  /// connection must close afterwards.
  bool handle_request(int fd, const HttpRequest& req);
  bool respond(int fd, int code, std::string_view body, bool keep_alive,
               const std::vector<std::string>& extra_headers = {});
  bool handle_command(int fd, std::uint32_t sid, const HttpRequest& req,
                      bool keep_alive);

  SimCore& core_;
  ServerConfig cfg_;
  SessionManager manager_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::thread> workers_;
  std::thread sweeper_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> commands_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
};

}  // namespace liteview::api
