#include "phy/ber.hpp"

#include <cmath>

namespace liteview::phy {

double ber_oqpsk(double sinr_db) noexcept {
  const double sinr = std::pow(10.0, sinr_db / 10.0);
  // Binomial coefficients C(16, k) for k = 2..16.
  static constexpr double kBinom[15] = {
      120,  560,  1820, 4368, 8008, 11440, 12870, 11440,
      8008, 4368, 1820, 560,  120,  16,    1};
  double acc = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    acc += sign * kBinom[k - 2] * std::exp(20.0 * sinr * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
  if (ber < 0.0) return 0.0;
  if (ber > 0.5) return 0.5;
  return ber;
}

double per_oqpsk(double sinr_db, int bits) noexcept {
  if (bits <= 0) return 0.0;
  const double ber = ber_oqpsk(sinr_db);
  if (ber <= 0.0) return 0.0;
  // log1p for numerical stability at tiny BER.
  const double log_success = static_cast<double>(bits) * std::log1p(-ber);
  return 1.0 - std::exp(log_success);
}

}  // namespace liteview::phy
