file(REMOVE_RECURSE
  "CMakeFiles/abl_batch_adaptation.dir/abl_batch_adaptation.cpp.o"
  "CMakeFiles/abl_batch_adaptation.dir/abl_batch_adaptation.cpp.o.d"
  "abl_batch_adaptation"
  "abl_batch_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batch_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
