# Empty dependencies file for abl_group_backoff.
# This may be replaced when dependencies are built.
