#include "testbed/accounting.hpp"

#include "mac/frame.hpp"
#include <algorithm>

#include "routing/protocol.hpp"

namespace liteview::testbed {

PacketAccounting::PacketAccounting(phy::Medium& medium,
                                   std::vector<net::Port> routing_ports)
    : routing_ports_(std::move(routing_ports)) {
  medium.set_sniffer(
      [this](const phy::SniffedFrame& f) { on_frame(f); });
}

void PacketAccounting::on_frame(const phy::SniffedFrame& frame) {
  ++total_.packets;
  total_.bytes += frame.psdu_bytes;

  const auto mac_frame = mac::decode_frame(frame.psdu);
  if (!mac_frame) return;
  const auto pkt = net::decode_packet(mac_frame->payload);
  if (!pkt) return;

  // Attribute routed data packets to the application port inside the
  // envelope; control and plain packets stay on their net-layer port.
  net::Port effective = pkt->port;
  const bool is_routing_port =
      std::find(routing_ports_.begin(), routing_ports_.end(), pkt->port) !=
      routing_ports_.end();
  if (is_routing_port) {
    if (const auto env = routing::parse_data_envelope(pkt->payload)) {
      effective = env->inner_port;
    }
  }
  auto& c = by_port_[effective];
  ++c.packets;
  c.bytes += frame.psdu_bytes;
}

PacketAccounting::Counters PacketAccounting::for_port(net::Port port) const {
  const auto it = by_port_.find(port);
  return it == by_port_.end() ? Counters{} : it->second;
}

PacketAccounting::Counters PacketAccounting::non_beacon() const {
  Counters out = total_;
  const auto beacons = for_port(net::kPortBeacon);
  out.packets -= beacons.packets;
  out.bytes -= beacons.bytes;
  return out;
}

void PacketAccounting::reset() {
  total_ = Counters{};
  by_port_.clear();
}

}  // namespace liteview::testbed
