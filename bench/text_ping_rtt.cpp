// Reproduces the paper's Sec. III-B3/III-B4 shell transcripts and their
// in-text numbers: single-hop ping RTT ≈ 4.7 ms for a 32-byte probe with
// LQI near the top of the range, and traceroute per-hop RTTs ≈ 4.7-4.9 ms
// over geographic forwarding on port 10.
#include <cstdio>

#include "bench/common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace liteview;

struct RunResult {
  double ping_rtt_ms = 0;
  double tr_hop_rtt_ms = 0;  // mean per-hop RTT over the trace
  int tr_hops = 0;
};

RunResult run_once(std::uint64_t seed) {
  auto tb = testbed::Testbed::paper_line(3, seed);
  tb->warm_up();
  RunResult out;

  const auto ping = tb->workstation().ping(1, "192.168.0.2 round=3 length=32", 3);
  if (ping.result) {
    util::RunningStats s;
    for (const auto& rd : ping.result->rounds_data) {
      if (rd.received) s.add(rd.rtt_us / 1000.0);
    }
    out.ping_rtt_ms = s.mean();
  }

  const auto tr = tb->workstation().traceroute(
      1, "192.168.0.3 round=1 length=32 port=10");
  util::RunningStats s;
  for (const auto& r : tr.reports) {
    if (r.report.reached) s.add(r.report.rtt_us / 1000.0);
  }
  out.tr_hop_rtt_ms = s.mean();
  out.tr_hops = static_cast<int>(s.count());
  return out;
}

}  // namespace

int main() {
  bench::header(
      "Sec. III-B3/B4 — Ping and traceroute sample transcripts and RTTs");

  // One live transcript, exactly as the shell prints it.
  {
    auto tb = testbed::Testbed::paper_line(3, 1);
    tb->warm_up();
    auto& sh = tb->shell();
    sh.cd("192.168.0.1");
    std::printf("\n$pwd\n%s", sh.execute("pwd").c_str());
    std::printf("$ping 192.168.0.2 round=1 length=32\n\n%s",
                sh.execute("ping 192.168.0.2 round=1 length=32").c_str());
    std::printf("\n$traceroute 192.168.0.3 round=1 length=32 port=10\n\n%s",
                sh.execute("traceroute 192.168.0.3 round=1 length=32 port=10")
                    .c_str());
  }

  constexpr int kReps = 8;
  const auto runs = bench::replicate<RunResult>(kReps, 17, run_once);
  util::RunningStats ping, tr;
  for (const auto& r : runs) {
    if (r.ping_rtt_ms > 0) ping.add(r.ping_rtt_ms);
    if (r.tr_hops > 0) tr.add(r.tr_hop_rtt_ms);
  }

  bench::section("paper vs. measured");
  bench::compare_row("one-hop ping RTT (32-byte probe)", "4.7 ms",
                     util::format("%.1f ms mean over %d runs", ping.mean(),
                                  kReps));
  bench::compare_row("traceroute per-hop RTT", "4.7-4.9 ms",
                     util::format("%.1f ms mean", tr.mean()));
  bench::compare_row("LQI on a healthy link", "~105-108",
                     "see transcript above");
  bench::compare_row("ping binary footprint", "2148 B flash / 278 B RAM",
                     "modeled identically (ps output)");
  bench::compare_row("traceroute binary footprint",
                     "2820 B flash / 272 B RAM",
                     "modeled identically (ps output)");
  return 0;
}
