// Reproduces paper Fig. 7: "Traceroute Command Overhead" — the number of
// radio packets one traceroute invocation costs, as a function of path
// length (1..8 hops). The paper reports near-linear growth with fewer
// than 50 control packets at 8 hops, and (Sec. V-C) that a one-hop ping
// costs just 2 packets.
//
// Analytically our implementation costs, loss-free:
//   probes+replies: 2H, reports from hop i travel i hops: sum = H(H-1)/2
//   → H=8: 16 + 28 = 44 packets (< 50, slightly superlinear — matching
//   the paper's "grows almost linearly ... fewer than 50").
#include <cstdio>

#include "bench/common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace liteview;

struct RunResult {
  double packets[9] = {0};  // index = hop count
  double ping_packets = 0;
};

RunResult run_once(std::uint64_t seed) {
  RunResult out;
  auto tb = testbed::Testbed::paper_line(9, seed);
  tb->warm_up();

  // Quiet the beacons so the accountant sees only command traffic.
  for (std::size_t i = 0; i < tb->size(); ++i) {
    tb->node(i).set_beacon_period(sim::SimTime::sec(120));
  }
  tb->sim().run_for(sim::SimTime::sec(1));

  for (int hops = 1; hops <= 8; ++hops) {
    tb->accounting().reset();
    (void)tb->workstation().traceroute(
        1, util::format("192.168.0.%d round=1 length=32 port=10", hops + 1));
    // All traceroute traffic: direct probes/replies plus routed reports
    // (attributed to the inner traceroute port by the accountant).
    out.packets[hops] =
        static_cast<double>(tb->accounting().for_port(net::kPortTraceroute).packets);
  }

  // The in-text claim: single-hop ping costs two packets.
  tb->accounting().reset();
  (void)tb->workstation().ping(1, "192.168.0.2 round=1 length=32", 1);
  out.ping_packets =
      static_cast<double>(tb->accounting().for_port(net::kPortPing).packets);
  return out;
}

}  // namespace

int main() {
  bench::header(
      "Figure 7 — Traceroute packet overhead vs. hop count (plus ping's "
      "2-packet cost)");

  constexpr int kReps = 6;
  const auto runs = bench::replicate<RunResult>(kReps, 5, run_once);

  std::printf("\n%-6s %-16s %-18s %s\n", "hops", "mean packets",
              "loss-free model", "per-hop increment");
  double prev = 0;
  for (int hops = 1; hops <= 8; ++hops) {
    util::RunningStats s;
    for (const auto& r : runs) s.add(r.packets[hops]);
    const double model = 2.0 * hops + hops * (hops - 1) / 2.0;
    std::printf("%-6d %-16.1f %-18.0f %+.1f\n", hops, s.mean(), model,
                s.mean() - prev);
    prev = s.mean();
  }

  util::RunningStats at8, ping;
  for (const auto& r : runs) {
    at8.add(r.packets[8]);
    ping.add(r.ping_packets);
  }

  bench::section("paper vs. measured");
  bench::compare_row("growth over hops", "almost linear",
                     "mildly superlinear (reports travel back)");
  bench::compare_row("packets at 8 hops", "< 50",
                     util::format("%.1f (model 44)", at8.mean()));
  bench::compare_row("single-hop ping cost", "2 packets",
                     util::format("%.1f packets", ping.mean()));
  return 0;
}
