// Unit tests for the PHY: CC2420 model, BER/PER, propagation, medium.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/ber.hpp"
#include "phy/cc2420.hpp"
#include "phy/medium.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"

namespace liteview::phy {
namespace {

// ---- CC2420 conversions ----------------------------------------------

TEST(Cc2420, PaTableAnchorPoints) {
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(31), 0.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(27), -1.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(23), -3.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(19), -5.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(15), -7.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(11), -10.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(7), -15.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(3), -25.0);
}

TEST(Cc2420, PaTableMonotone) {
  for (PaLevel l = 1; l <= kMaxPaLevel; ++l) {
    EXPECT_GE(pa_level_to_dbm(l), pa_level_to_dbm(l - 1))
        << "level " << static_cast<int>(l);
  }
}

TEST(Cc2420, PaTableClampsBelowAndAbove) {
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(0), -25.0);
  EXPECT_DOUBLE_EQ(pa_level_to_dbm(200), 0.0);
}

TEST(Cc2420, RssiRegisterMatchesPaperExample) {
  // "a RSSI reading of -20 indicates a RF power level of approximately
  // -65 dBm" (Sec. III-B3).
  EXPECT_EQ(rssi_register(-65.0), -20);
  EXPECT_DOUBLE_EQ(rssi_register_to_dbm(-20), -65.0);
}

TEST(Cc2420, RssiRegisterSaturates) {
  EXPECT_EQ(rssi_register(-300.0), -128);
  EXPECT_EQ(rssi_register(300.0), 127);
}

TEST(Cc2420, LqiRange) {
  // Paper: "A correlation of around 110 indicates the highest quality
  // while a value of 50 the lowest."
  EXPECT_EQ(lqi_from_snr(-30.0), 50);
  EXPECT_EQ(lqi_from_snr(40.0), 110);
  const auto mid = lqi_from_snr(4.5);
  EXPECT_GT(mid, 50);
  EXPECT_LT(mid, 110);
}

TEST(Cc2420, LqiMonotoneInSnr) {
  for (double snr = -5.0; snr < 14.0; snr += 0.5) {
    EXPECT_LE(lqi_from_snr(snr), lqi_from_snr(snr + 0.5));
  }
}

TEST(Cc2420, FrameAirtime) {
  // 250 kbps → 32 us/byte; 6 bytes of sync+len overhead.
  EXPECT_EQ(frame_airtime(10).microseconds(), (6 + 10) * 32.0);
  // PSDU capped at 127.
  EXPECT_EQ(frame_airtime(500), frame_airtime(127));
}

// ---- BER/PER ------------------------------------------------------------

TEST(Ber, MonotoneDecreasingInSinr) {
  double prev = 1.0;
  for (double sinr = -10.0; sinr <= 12.0; sinr += 1.0) {
    const double b = ber_oqpsk(sinr);
    EXPECT_LE(b, prev + 1e-12) << "sinr " << sinr;
    prev = b;
  }
}

TEST(Ber, GoodLinkEssentiallyErrorFree) {
  EXPECT_LT(ber_oqpsk(10.0), 1e-9);
}

TEST(Ber, BadLinkNearCoinFlip) {
  EXPECT_GT(ber_oqpsk(-10.0), 0.1);
}

TEST(Per, ZeroBitsZeroPer) {
  EXPECT_EQ(per_oqpsk(5.0, 0), 0.0);
}

TEST(Per, IncreasesWithLength) {
  const double short_per = per_oqpsk(5.0, 100);
  const double long_per = per_oqpsk(5.0, 1000);
  EXPECT_LT(short_per, long_per);
  EXPECT_GE(short_per, 0.0);
  EXPECT_LE(long_per, 1.0);
}

TEST(Per, ConsistentWithBer) {
  const double ber = ber_oqpsk(4.0);
  const double per = per_oqpsk(4.0, 256);
  EXPECT_NEAR(per, 1.0 - std::pow(1.0 - ber, 256), 1e-9);
}

// ---- propagation ----------------------------------------------------------

TEST(Propagation, LogDistanceBaseline) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  PropagationModel m(cfg, 1);
  const Position a{0, 0}, b{10, 0};
  // pl0 40, n 3 → 40 + 30*log10(10) = 70.
  EXPECT_NEAR(m.static_path_loss_db(0, 1, a, b), 70.0, 1e-9);
}

TEST(Propagation, ShadowingFrozenPerDirectedPair) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 4.0;
  PropagationModel m(cfg, 77);
  const Position a{0, 0}, b{25, 0};
  const double ab1 = m.static_path_loss_db(3, 9, a, b);
  const double ab2 = m.static_path_loss_db(3, 9, a, b);
  EXPECT_DOUBLE_EQ(ab1, ab2);  // frozen
  const double ba = m.static_path_loss_db(9, 3, b, a);
  EXPECT_NE(ab1, ba);  // directed → asymmetric links (paper Fig. 6)
}

TEST(Propagation, SeedChangesShadowing) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 4.0;
  PropagationModel m1(cfg, 1), m2(cfg, 2);
  const Position a{0, 0}, b{25, 0};
  EXPECT_NE(m1.static_path_loss_db(0, 1, a, b),
            m2.static_path_loss_db(0, 1, a, b));
}

TEST(Propagation, MinimumDistanceClamped) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  PropagationModel m(cfg, 1);
  const Position a{0, 0};
  // Coincident nodes: clamped at 0.1 m rather than -inf loss.
  EXPECT_NEAR(m.static_path_loss_db(0, 1, a, a),
              cfg.pl0_db + 10.0 * cfg.exponent * std::log10(0.1), 1e-9);
}

// ---- medium -----------------------------------------------------------------

class Sink : public MediumClient {
 public:
  void on_frame(const std::vector<std::uint8_t>& psdu,
                const RxInfo& info) override {
    frames.push_back({psdu, info});
  }
  std::vector<std::pair<std::vector<std::uint8_t>, RxInfo>> frames;
};

struct MediumFixture : ::testing::Test {
  MediumFixture() : sim(5), medium(sim, make_prop()) {}
  static PropagationConfig make_prop() {
    PropagationConfig p;
    p.shadowing_sigma_db = 0.0;
    p.fading_sigma_db = 0.0;
    return p;
  }
  sim::Simulator sim;
  Medium medium;
};

TEST_F(MediumFixture, DeliversWithinRange) {
  Sink tx_sink, rx_sink;
  const auto tx = medium.attach(&tx_sink, {0, 0});
  medium.attach(&rx_sink, {10, 0});
  medium.transmit(tx, 0.0, {1, 2, 3});
  sim.run();
  ASSERT_EQ(rx_sink.frames.size(), 1u);
  EXPECT_TRUE(rx_sink.frames[0].second.crc_ok);
  EXPECT_EQ(rx_sink.frames[0].first, (std::vector<std::uint8_t>{1, 2, 3}));
  // rx power = 0 - 70 dB = -70 dBm → register -25.
  EXPECT_EQ(rx_sink.frames[0].second.rssi_reg, -25);
  EXPECT_EQ(tx_sink.frames.size(), 0u);  // no self-reception
}

TEST_F(MediumFixture, NoDeliveryBelowSensitivity) {
  Sink a, b;
  const auto tx = medium.attach(&a, {0, 0});
  medium.attach(&b, {2000, 0});  // ~139 dB path loss
  medium.transmit(tx, 0.0, {9});
  sim.run();
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(medium.frames_below_sensitivity(), 1u);
}

TEST_F(MediumFixture, ChannelIsolation) {
  Sink a, b, c;
  const auto tx = medium.attach(&a, {0, 0}, 17);
  medium.attach(&b, {10, 0}, 17);
  medium.attach(&c, {10, 5}, 26);
  medium.transmit(tx, 0.0, {42});
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(c.frames.empty());
}

TEST_F(MediumFixture, DeliveryTakesAirtime) {
  Sink a, b;
  const auto tx = medium.attach(&a, {0, 0});
  medium.attach(&b, {10, 0});
  std::vector<std::uint8_t> psdu(20, 0xcc);
  medium.transmit(tx, 0.0, psdu);
  sim.run_until(frame_airtime(20) - sim::SimTime::us(1));
  EXPECT_TRUE(b.frames.empty());
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST_F(MediumFixture, CollisionCorruptsBothAtEqualPower) {
  Sink a, b, victim;
  const auto t1 = medium.attach(&a, {-10, 0});
  const auto t2 = medium.attach(&b, {10, 0});
  medium.attach(&victim, {0, 0});
  std::vector<std::uint8_t> psdu(60, 1);
  medium.transmit(t1, 0.0, psdu);
  medium.transmit(t2, 0.0, psdu);  // same instant, equal power
  sim.run();
  // SINR ≈ 0 dB → PER ≈ 1: both frames arrive corrupted (crc_ok false).
  ASSERT_EQ(victim.frames.size(), 2u);
  EXPECT_FALSE(victim.frames[0].second.crc_ok);
  EXPECT_FALSE(victim.frames[1].second.crc_ok);
  EXPECT_EQ(medium.frames_corrupted(), 2u);
}

TEST_F(MediumFixture, CaptureWhenMuchStronger) {
  Sink a, b, victim;
  const auto strong = medium.attach(&a, {2, 0});
  const auto weak = medium.attach(&b, {300, 0});
  medium.attach(&victim, {0, 0});
  std::vector<std::uint8_t> psdu(40, 1);
  medium.transmit(weak, 0.0, psdu);
  medium.transmit(strong, 0.0, psdu);
  sim.run();
  // The strong frame survives; SINR for it is huge.
  bool strong_ok = false;
  for (const auto& [bytes, info] : victim.frames) {
    if (info.crc_ok) strong_ok = true;
  }
  EXPECT_TRUE(strong_ok);
}

TEST_F(MediumFixture, HalfDuplexReceiverMidTransmission) {
  Sink a, b;
  const auto t1 = medium.attach(&a, {0, 0});
  const auto t2 = medium.attach(&b, {10, 0});
  std::vector<std::uint8_t> psdu(50, 1);
  medium.transmit(t1, 0.0, psdu);
  // t2 starts transmitting while t1's frame is in the air toward it.
  sim.run_until(sim::SimTime::us(100));
  medium.transmit(t2, 0.0, psdu);
  sim.run();
  // t2 must not have received t1's frame (it was transmitting).
  EXPECT_TRUE(b.frames.empty());
  // ...but t1 hears t2's frame after finishing its own transmission?
  // t1's tx ends at ~1.8 ms, t2's frame ends ~1.9 ms; t1 was still
  // transmitting when t2's frame *started*, so it is deaf to it as well.
  EXPECT_TRUE(a.frames.empty());
  EXPECT_GE(medium.frames_missed_busy_rx(), 1u);
}

TEST_F(MediumFixture, CcaSeesActiveTransmission) {
  Sink a, b;
  const auto t1 = medium.attach(&a, {0, 0});
  const auto r = medium.attach(&b, {10, 0});
  EXPECT_TRUE(medium.cca_clear(r, -90.0));
  medium.transmit(t1, 0.0, {1, 2, 3, 4});
  // During the transmission the channel reads busy at -70 dBm.
  EXPECT_FALSE(medium.cca_clear(r, -90.0));
  EXPECT_NEAR(medium.channel_power_dbm(r), -70.0, 0.5);
  sim.run();
  EXPECT_TRUE(medium.cca_clear(r, -90.0));
}

TEST_F(MediumFixture, SnifferSeesEveryTransmission) {
  Sink a, b;
  const auto t1 = medium.attach(&a, {0, 0});
  const auto t2 = medium.attach(&b, {10, 0});
  int count = 0;
  std::size_t bytes = 0;
  medium.set_sniffer([&](const SniffedFrame& f) {
    ++count;
    bytes += f.psdu_bytes;
  });
  medium.transmit(t1, 0.0, {1, 2, 3});
  sim.run();
  medium.transmit(t2, 0.0, {4, 5});
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(bytes, 5u);
  EXPECT_EQ(medium.frames_sent(), 2u);
}

TEST_F(MediumFixture, DetachedRadioGetsNothing) {
  Sink a, b;
  const auto t1 = medium.attach(&a, {0, 0});
  const auto r = medium.attach(&b, {10, 0});
  medium.detach(r);
  medium.transmit(t1, 0.0, {7});
  sim.run();
  EXPECT_TRUE(b.frames.empty());
}

TEST_F(MediumFixture, RetuneMidFrameLosesFrame) {
  Sink a, b;
  const auto t1 = medium.attach(&a, {0, 0});
  const auto r = medium.attach(&b, {10, 0});
  medium.transmit(t1, 0.0, std::vector<std::uint8_t>(30, 2));
  sim.run_until(sim::SimTime::us(200));
  medium.set_channel(r, 26);  // retunes away mid-reception
  sim.run();
  EXPECT_TRUE(b.frames.empty());
}

TEST_F(MediumFixture, LqiReflectsSnr) {
  Sink a, near_sink, far_sink;
  const auto tx = medium.attach(&a, {0, 0});
  medium.attach(&near_sink, {5, 0});
  medium.attach(&far_sink, {50, 0});
  medium.transmit(tx, 0.0, {1});
  sim.run();
  ASSERT_EQ(near_sink.frames.size(), 1u);
  ASSERT_EQ(far_sink.frames.size(), 1u);
  EXPECT_GT(near_sink.frames[0].second.lqi, far_sink.frames[0].second.lqi);
}

}  // namespace
}  // namespace liteview::phy
