// Uniform spatial hash grid over radio positions.
//
// Buckets radios into square cells so the medium can enumerate "everything
// within r meters of here" by scanning O((r/cell)^2) cells instead of every
// radio in the deployment. Queries are conservative by construction: they
// return every radio in any cell that intersects the disc (possibly a few
// outside it), never missing one inside — the caller applies the exact
// distance test. Purely geometric; all delivery semantics stay in Medium.
//
// Storage is a flat open-addressed cell table (linear probing) whose slots
// head intrusive singly-linked membership chains threaded through a dense
// per-radio next[] array — no per-cell vectors, no node allocations: once
// the deployment is placed, insert/move/remove touch only existing arrays.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "phy/propagation.hpp"

namespace liteview::phy {

/// Radio identifier within a Medium (dense, assigned at attach()).
using RadioId = std::uint32_t;
inline constexpr RadioId kInvalidRadio =
    std::numeric_limits<RadioId>::max();

class SpatialGrid {
 public:
  /// `cell_size_m` trades memory for query precision; the medium sizes it
  /// at the propagation model's max range so a query touches ~9 cells.
  explicit SpatialGrid(double cell_size_m);

  void insert(RadioId id, Position pos);
  /// `pos` must be the position the id was inserted/moved to last.
  void remove(RadioId id, Position pos);
  void move(RadioId id, Position from, Position to);

  /// Append every radio whose cell intersects the disc (center, radius)
  /// to `out` (without clearing it). Radios appear at most once.
  void query(Position center, double radius_m,
             std::vector<RadioId>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] double cell_size_m() const noexcept { return cell_; }

 private:
  using CellKey = std::uint64_t;

  /// Chain/head sentinels. pack() can produce any 64-bit value (negative
  /// coordinates), so slot occupancy is encoded in `head`, not the key.
  static constexpr std::int32_t kFreeSlot = -2;  ///< never keyed
  static constexpr std::int32_t kChainEnd = -1;  ///< keyed, empty chain OK

  struct Slot {
    CellKey key = 0;
    std::int32_t head = kFreeSlot;  ///< first radio in the cell's chain
  };

  [[nodiscard]] std::int32_t coord(double v) const noexcept;
  [[nodiscard]] static CellKey pack(std::int32_t cx,
                                    std::int32_t cy) noexcept {
    return (static_cast<CellKey>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  [[nodiscard]] static std::size_t hash(CellKey key) noexcept;

  /// Slot index holding `key`, or the free slot where it would go.
  [[nodiscard]] std::size_t find_slot(CellKey key) const noexcept;
  /// Slot for `key`, keying a free slot (and rehashing) as needed.
  std::size_t claim_slot(CellKey key);
  void rehash(std::size_t new_slots);
  void append_chain(std::int32_t head, std::vector<RadioId>& out) const;

  double cell_;
  std::size_t count_ = 0;       ///< radios in the grid
  std::size_t used_slots_ = 0;  ///< keyed slots (live or emptied cells)
  std::size_t live_cells_ = 0;  ///< keyed slots with a non-empty chain
  std::vector<Slot> slots_;     ///< power-of-two open-addressed table
  /// next_[id]: the next radio in id's cell chain (kChainEnd terminates);
  /// dense over every id ever inserted.
  std::vector<std::int32_t> next_;
};

}  // namespace liteview::phy
