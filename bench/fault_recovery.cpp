// Fault-recovery sweep — Gilbert–Elliott burst-loss severity × batch
// adaptation for multi-fragment reliable commands, on the fault plane
// (not an i.i.d. drop filter: bursts are what real WSN links do, and
// what fixed retry timers collapse under). Metrics: eventual delivery
// ratio and mean recovery latency (completion time of the transfers
// that needed at least one retransmission).
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "bench/common.hpp"
#include "fault/fault_plane.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace liteview;

struct Outcome {
  double delivered_ratio = 0;
  double recovery_ms = 0;  ///< mean, over transfers that retransmitted
  double injected_drops = 0;
};

// GE chain with the requested stationary loss: loss_bad = 1, and the
// bad-state dwell fixed by p_bad_to_good = 0.35 (mean burst ≈ 3 frames).
fault::GilbertElliottConfig ge_for_loss(double loss) {
  fault::GilbertElliottConfig ge;
  ge.p_bad_to_good = 0.35;
  ge.p_good_to_bad = loss * ge.p_bad_to_good / (1.0 - loss);
  ge.loss_bad = 1.0;
  ge.loss_good = 0.0;
  return ge;
}

Outcome run(std::uint64_t seed, int loss_percent, bool adaptive) {
  testbed::TestbedConfig cfg = testbed::Testbed::paper_config(seed);
  cfg.controller.reliable.adaptive_batch = adaptive;
  // Measure *eventual* delivery: deepen the retry ladder and disable the
  // dead-peer fast-fail, which would otherwise insta-fail sends issued
  // inside a failed predecessor's cooldown and pollute the ratio.
  cfg.controller.reliable.max_retries = 14;
  cfg.controller.reliable.dead_peer_cooldown = sim::SimTime::zero();
  auto tb =
      testbed::Testbed::line(2, testbed::Testbed::paper_spacing_m(), cfg);
  tb->warm_up();
  for (std::size_t i = 0; i < tb->size(); ++i) {
    tb->node(i).set_beacon_period(sim::SimTime::sec(120));
  }
  if (loss_percent > 0) {
    const auto ge = ge_for_loss(loss_percent / 100.0);
    tb->fault().set_link_burst(1, 2, ge);
    tb->fault().set_link_burst(2, 1, ge);
  }

  auto& ep = tb->suite(0).controller().endpoint();
  std::vector<std::uint8_t> msg(240);  // 5 fragments
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 31);
  }

  constexpr int kMessages = 25;
  int delivered = 0;
  util::RunningStats recovery;
  for (int i = 0; i < kMessages; ++i) {
    const auto t0 = tb->sim().now();
    const auto retrans0 = ep.stats().retransmissions;
    bool done = false, ok = false;
    ep.send_message(2, msg, [&](bool s) {
      ok = s;
      done = true;
    });
    while (!done && tb->sim().now() - t0 < sim::SimTime::sec(60)) {
      tb->sim().run_for(sim::SimTime::ms(100));
    }
    if (ok) {
      ++delivered;
      if (ep.stats().retransmissions > retrans0) {
        recovery.add((tb->sim().now() - t0).milliseconds());
      }
    }
  }

  Outcome out;
  out.delivered_ratio = static_cast<double>(delivered) / kMessages;
  out.recovery_ms = recovery.count() > 0 ? recovery.mean() : 0.0;
  out.injected_drops =
      static_cast<double>(tb->fault().totals().frames_dropped);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header(
      "Fault recovery — burst-loss severity vs. batch adaptation "
      "(240-byte reliable commands through a Gilbert–Elliott link)");

  const std::string json_path = bench::json_path_from_args(argc, argv);
  std::unique_ptr<bench::JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<bench::JsonWriter>(json_path);
    json->begin_object();
    json->field("bench", std::string("fault_recovery"));
    json->begin_array("loss_sweep");
  }

  constexpr int kReps = 4;
  std::printf("\n%-8s %-26s %-26s %-10s\n", "loss%", "adaptive",
              "fixed batch", "drops");
  std::printf("%-8s %-26s %-26s\n", "", "ratio / recovery ms",
              "ratio / recovery ms");
  for (int loss : {0, 10, 20, 30, 40}) {
    double drops = 0;
    auto cell = [&](bool adaptive) {
      util::RunningStats ratio, rec;
      const auto rs = bench::replicate<Outcome>(
          kReps, 601 + static_cast<std::uint64_t>(loss),
          [&](std::uint64_t seed) { return run(seed, loss, adaptive); });
      for (const auto& o : rs) {
        ratio.add(o.delivered_ratio);
        rec.add(o.recovery_ms);
        drops += o.injected_drops;
      }
      if (json) {
        json->begin_object();
        json->field("loss_percent", loss);
        json->field("adaptive", adaptive);
        json->field("delivered_ratio", ratio.mean());
        json->field("recovery_ms", rec.mean());
        json->end_object();
      }
      return util::format("%5.1f%% / %6.0f", 100.0 * ratio.mean(),
                          rec.mean());
    };
    const auto adaptive = cell(true);
    const auto fixed = cell(false);
    std::printf("%-8d %-26s %-26s %-10.0f\n", loss, adaptive.c_str(),
                fixed.c_str(), drops);
  }
  if (json) {
    json->end_array();
    json->end_object();
    json.reset();
  }

  bench::section("reading");
  std::printf(
      "Delivery ratio stays at 100%% through 30%% burst loss: the\n"
      "exponential-backoff retry ladder outlasts bursts, only giving up\n"
      "near 40%%. Recovery latency grows with severity — the graceful-\n"
      "degradation trade is time, not data. Adaptive batching wins at\n"
      "mild loss (smaller redundant resends); under heavy bursts the\n"
      "fixed batch recovers faster because shrinking to batch-1 rounds\n"
      "means each burst frame costs a whole backoff window.\n");

  // Shared-nothing scaling: the same 8-replication workload on 1 worker
  // vs. 8. Each replication owns its Simulator+Testbed, so speedup is
  // bounded only by physical cores (hardware_concurrency below reports
  // what this host can actually deliver).
  bench::section("parallel replication speedup (64 reps, burst loss 20%)");
  constexpr int kSpeedupReps = 64;
  auto sweep = [&](unsigned threads) {
    return bench::wall_seconds([&] {
      bench::replicate<Outcome>(
          kSpeedupReps, 913,
          [&](std::uint64_t seed) { return run(seed, 20, true); }, threads);
    });
  };
  const double serial_s = sweep(1);
  const double parallel_s = sweep(8);
  std::printf(
      "  1 thread: %6.2f s    8 threads: %6.2f s    speedup: %.2fx "
      "(host has %u hardware threads)\n",
      serial_s, parallel_s, serial_s / parallel_s,
      std::thread::hardware_concurrency());
  return 0;
}
