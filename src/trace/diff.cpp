#include "trace/diff.hpp"

#include <algorithm>
#include <cinttypes>

#include "util/strings.hpp"

namespace liteview::trace {

std::vector<Record> merged_records(const TraceFile& tf) {
  std::size_t total = 0;
  for (const auto& st : tf.sources) total += st.records.size();
  std::vector<Record> out;
  out.reserve(total);
  for (const auto& st : tf.sources) {
    out.insert(out.end(), st.records.begin(), st.records.end());
  }
  // The recorder's global counter makes seq unique across rings, so a
  // stable sort on seq alone reconstructs emission order exactly.
  std::sort(out.begin(), out.end(),
            [](const Record& x, const Record& y) { return x.seq < y.seq; });
  return out;
}

namespace {

std::string render_side(const char* name, const std::optional<Record>& r) {
  if (!r) return util::format("  %s: <end of trace>\n", name);
  return util::format("  %s: %s\n", name, to_string(*r).c_str());
}

}  // namespace

DiffResult diff(const TraceFile& a, const TraceFile& b) {
  DiffResult res;
  const auto ra = merged_records(a);
  const auto rb = merged_records(b);
  const std::size_t n = std::min(ra.size(), rb.size());

  for (std::size_t i = 0; i < n; ++i) {
    if (ra[i] == rb[i]) continue;
    res.compared = i;
    res.divergence = Divergence{i, ra[i], rb[i]};
    res.summary = util::format(
        "traces diverge at merged record %zu (after %zu identical "
        "records):\n",
        i, i);
    res.summary += render_side("A", res.divergence->a);
    res.summary += render_side("B", res.divergence->b);
    return res;
  }

  if (ra.size() != rb.size()) {
    res.compared = n;
    res.divergence =
        Divergence{n, n < ra.size() ? std::optional(ra[n]) : std::nullopt,
                   n < rb.size() ? std::optional(rb[n]) : std::nullopt};
    res.summary = util::format(
        "traces match for %zu records, then one ends early (A has %zu, B "
        "has %zu):\n",
        n, ra.size(), rb.size());
    res.summary += render_side("A", res.divergence->a);
    res.summary += render_side("B", res.divergence->b);
    return res;
  }

  res.identical = true;
  res.compared = n;
  res.summary = util::format("traces identical: %zu records", n);

  // Identical records can still hide a disagreement in ring structure
  // (e.g. a source registered in one run only). Flag it without claiming
  // record-level divergence.
  if (a.sources.size() != b.sources.size()) {
    res.identical = false;
    res.summary += util::format(
        "\nWARNING: ring sets differ (A has %zu rings, B has %zu)",
        a.sources.size(), b.sources.size());
  }
  return res;
}

DiffResult diff_bytes(std::span<const std::uint8_t> a,
                      std::span<const std::uint8_t> b) {
  const auto ta = FlightRecorder::parse(a);
  const auto tb = FlightRecorder::parse(b);
  if (!ta || !tb) {
    DiffResult res;
    res.summary = util::format("parse failure: A %s, B %s",
                               ta ? "ok" : "malformed",
                               tb ? "ok" : "malformed");
    return res;
  }
  return diff(*ta, *tb);
}

}  // namespace liteview::trace
