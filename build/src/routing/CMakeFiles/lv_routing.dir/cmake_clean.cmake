file(REMOVE_RECURSE
  "CMakeFiles/lv_routing.dir/flooding.cpp.o"
  "CMakeFiles/lv_routing.dir/flooding.cpp.o.d"
  "CMakeFiles/lv_routing.dir/geographic.cpp.o"
  "CMakeFiles/lv_routing.dir/geographic.cpp.o.d"
  "CMakeFiles/lv_routing.dir/protocol.cpp.o"
  "CMakeFiles/lv_routing.dir/protocol.cpp.o.d"
  "CMakeFiles/lv_routing.dir/tree.cpp.o"
  "CMakeFiles/lv_routing.dir/tree.cpp.o.d"
  "liblv_routing.a"
  "liblv_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
