# Empty compiler generated dependencies file for hotspot_hunt.
# This may be replaced when dependencies are built.
