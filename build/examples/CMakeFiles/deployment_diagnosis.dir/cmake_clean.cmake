file(REMOVE_RECURSE
  "CMakeFiles/deployment_diagnosis.dir/deployment_diagnosis.cpp.o"
  "CMakeFiles/deployment_diagnosis.dir/deployment_diagnosis.cpp.o.d"
  "deployment_diagnosis"
  "deployment_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
