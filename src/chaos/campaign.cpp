#include "chaos/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "kernel/naming.hpp"
#include "sim/replication.hpp"
#include "testbed/testbed.hpp"
#include "trace/diff.hpp"
#include "util/strings.hpp"

namespace liteview::chaos {
namespace {

/// Deployment tuned for fast chaos cells: short neighbor aging and a
/// tight retry ladder so every recovery path fits inside the quiesce
/// grace, without touching the protocol logic under test.
testbed::TestbedConfig cell_config(std::uint64_t seed,
                                   const CellOptions& opt) {
  testbed::TestbedConfig cfg = testbed::Testbed::paper_config(seed);
  cfg.seed = seed;
  cfg.flight_recorder = opt.record;
  cfg.neighbors.max_age = sim::SimTime::sec(10);
  for (lv::ReliableConfig* rc :
       {&cfg.controller.reliable, &cfg.workstation.reliable}) {
    rc->max_retries = 5;
    rc->max_backoff = sim::SimTime::sec(1);
    rc->dead_peer_cooldown = sim::SimTime::sec(2);
    rc->incoming_ttl = sim::SimTime::sec(5);
    rc->chaos_swallow_exhausted = opt.inject_termination_bug;
  }
  return cfg;
}

}  // namespace

CellOutcome run_cell(std::uint64_t seed, const fault::Scenario& sc,
                     const CellOptions& opt) {
  auto tb = testbed::Testbed::surveyed_line(opt.nodes, cell_config(seed, opt));

  std::string load_error;
  if (!tb->fault().load(sc, &load_error)) {
    throw std::runtime_error("scenario rejected: " + load_error);
  }

  OracleSet quiesce_oracles;
  OracleSet inline_oracles;
  install_testbed_oracles(*tb, quiesce_oracles, inline_oracles);
  sim::EventHandle probe;
  if (opt.inline_oracles) {
    probe = inline_oracles.install_inline_probe(tb->sim(),
                                                sim::SimTime::ms(500));
  }

  tb->warm_up();

  // The operator's management session: walk to a random node, interrogate
  // it, occasionally traceroute across the line. Every draw comes from
  // one named stream so the workload is a pure function of the seed.
  util::RngStream wl(seed, "chaos.workload");
  CellOutcome out;
  auto& shell = tb->shell();
  for (int c = 0; c < opt.commands; ++c) {
    const auto at = static_cast<net::Addr>(wl.uniform_int(1, opt.nodes));
    const auto target = static_cast<net::Addr>(wl.uniform_int(1, opt.nodes));
    shell.execute("cd " + kernel::ip_style_name(
                              static_cast<std::uint16_t>(at)));
    switch (wl.uniform_int(0, 3)) {
      case 0:
        (void)shell.execute("ping " + kernel::ip_style_name(
                                          static_cast<std::uint16_t>(target)));
        break;
      case 1: {
        const auto run = tb->workstation().traceroute(
            at, kernel::ip_style_name(static_cast<std::uint16_t>(target)), 1);
        if (auto bad = check_traceroute_run(run)) {
          out.failures.push_back(OracleFailure{
              "traceroute-partial-path", "inline", std::move(*bad)});
        }
        break;
      }
      case 2:
        (void)shell.execute("neighborsetup");
        (void)shell.execute("list");
        (void)shell.execute("exit");
        break;
      default:
        (void)shell.execute("netstat");
        break;
    }
    ++out.commands_run;
  }

  // Quiesce: past all scripted fault activity, then one neighbor aging
  // horizon plus slack for in-flight recoveries to settle.
  const sim::SimTime grace =
      tb->config().neighbors.max_age + sim::SimTime::sec(4);
  const sim::SimTime quiesce_at =
      std::max(tb->sim().now(), last_fault_activity(sc)) + grace;
  tb->sim().run_until(quiesce_at);

  // Reliable termination is a liveness property: with four commands
  // serialized behind one in-flight slot, worst-case drain is several
  // full retry ladders plus dead-peer cooldown probes, which can
  // legitimately outlast the fixed grace (a 3000-cell campaign found
  // exactly that). Wait it out in bounded, deterministic steps; an
  // endpoint that never drains still hits the cap and fails the oracle.
  for (int step = 0; step < 60 && !reliable_endpoints_idle(*tb); ++step) {
    tb->sim().run_for(sim::SimTime::sec(2));
  }
  probe.cancel();

  quiesce_oracles.run("quiesce");
  inline_oracles.run("quiesce");

  for (const auto& f : quiesce_oracles.failures()) out.failures.push_back(f);
  for (const auto& f : inline_oracles.failures()) out.failures.push_back(f);
  if (opt.record && tb->recorder() != nullptr) {
    out.trace = tb->recorder()->serialize();
  }
  return out;
}

std::size_t CampaignResult::failed_cells() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(cells.begin(), cells.end(),
                    [](const CellResult& c) { return !c.ok(); }));
}

double CampaignResult::cells_per_minute() const noexcept {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(cells.size()) / wall_seconds * 60.0;
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();

  sim::ReplicationConfig rep;
  rep.replications = cfg.cells;
  rep.threads = cfg.threads;
  rep.base_seed = cfg.base_seed;

  struct CellValue {
    std::string scenario;
    std::vector<OracleFailure> failures;
    int commands_run = 0;
  };

  auto reps = sim::run_replications(
      rep, [&cfg](std::size_t index, std::uint64_t seed) -> CellValue {
        const fault::Scenario sc = generate_scenario(seed, cfg.generator);
        CellValue v;
        v.scenario = fault::serialize_scenario(sc);

        const bool probe_determinism =
            cfg.determinism_every != 0 && index % cfg.determinism_every == 0;
        CellOptions opt = cfg.cell;
        opt.record = probe_determinism;

        CellOutcome first = run_cell(seed, sc, opt);
        v.failures = std::move(first.failures);
        v.commands_run = first.commands_run;
        if (probe_determinism) {
          const CellOutcome second = run_cell(seed, sc, opt);
          if (first.trace != second.trace) {
            const auto d = trace::diff_bytes(first.trace, second.trace);
            v.failures.push_back(OracleFailure{
                "determinism", "quiesce",
                "same seed+scenario produced different traces: " +
                    d.summary});
          }
        }
        return v;
      });

  CampaignResult out;
  out.config = cfg;
  out.cells.reserve(reps.size());
  for (auto& r : reps) {
    CellResult c;
    c.index = r.index;
    c.seed = r.seed;
    if (r.ok) {
      c.scenario = std::move(r.value->scenario);
      c.failures = std::move(r.value->failures);
      c.commands_run = r.value->commands_run;
    } else {
      c.error = std::move(r.error);
      c.scenario = fault::serialize_scenario(
          generate_scenario(c.seed, cfg.generator));
    }
    out.cells.push_back(std::move(c));
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += util::format("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  json_escape_into(out, s);
  out += '"';
  return out;
}

}  // namespace

std::string campaign_report_json(const CampaignResult& r) {
  std::string j = "{\n";
  j += util::format("  \"cells\": %zu,\n", r.cells.size());
  j += util::format("  \"base_seed\": %llu,\n",
                    static_cast<unsigned long long>(r.config.base_seed));
  j += util::format("  \"nodes\": %d,\n", r.config.cell.nodes);
  j += util::format("  \"commands_per_cell\": %d,\n", r.config.cell.commands);
  j += util::format("  \"determinism_every\": %zu,\n",
                    r.config.determinism_every);
  j += util::format("  \"failed_cells\": %zu,\n", r.failed_cells());
  j += util::format("  \"wall_seconds\": %.3f,\n", r.wall_seconds);
  j += util::format("  \"cells_per_minute\": %.1f,\n", r.cells_per_minute());
  j += "  \"failures\": [";
  bool first = true;
  for (const auto& c : r.cells) {
    if (c.ok()) continue;
    if (!first) j += ',';
    first = false;
    j += "\n    {";
    j += util::format("\"index\": %zu, \"seed\": %llu, ", c.index,
                      static_cast<unsigned long long>(c.seed));
    if (!c.error.empty()) {
      j += "\"exception\": " + jstr(c.error) + ", ";
    }
    j += "\"oracles\": [";
    for (std::size_t i = 0; i < c.failures.size(); ++i) {
      if (i > 0) j += ", ";
      j += "{\"oracle\": " + jstr(c.failures[i].oracle) +
           ", \"when\": " + jstr(c.failures[i].when) +
           ", \"detail\": " + jstr(c.failures[i].detail) + "}";
    }
    j += "], \"scenario\": " + jstr(c.scenario) + "}";
  }
  j += first ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

}  // namespace liteview::chaos
