// The traceroute command (paper Sec. III-B4, IV-C6, Fig. 4).
//
// Per-hop operation: each node along the path temporarily becomes a
// sender and runs a "traceroute task": it probes its next hop (a single
// link), measures the RTT and both directions' link quality, sends a
// report packet back to the source over the routing protocol, and — if
// the probed node is not the destination — the probed node initiates its
// own task. Reports therefore carry one hop each, which is why traceroute
// scales to longer paths than padding-based multi-hop ping (Sec. IV-C3)
// and why Fig. 7's overhead stays under 50 packets at 8 hops.
//
// Modeled footprint matches the paper: 2820 bytes flash, 272 bytes RAM.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "kernel/node.hpp"
#include "kernel/process.hpp"
#include "liteview/messages.hpp"
#include "routing/protocol.hpp"

namespace liteview::lv {

struct TracerouteParams {
  net::Addr dst = 0;
  int rounds = 1;
  int length = 32;
  net::Port routing_port = net::kPortGeographic;
  /// Per-hop probe reply timeout.
  sim::SimTime hop_timeout = sim::SimTime::ms(250);
  /// Probe retransmissions before a hop is reported unreached (hidden
  /// terminals make single probes collide under concurrent traffic).
  int probe_retries = 2;
  /// Overall deadline for collecting all reports of one round.
  sim::SimTime total_timeout = sim::SimTime::sec(5);
};

/// Parse "192.168.0.3 round=1 length=32 port=10" from the kernel
/// parameter buffer.
[[nodiscard]] std::optional<TracerouteParams> parse_traceroute_params(
    const std::string& buffer, const kernel::AddressBook* book);

class TracerouteProcess final : public kernel::Process {
 public:
  /// Streamed per-hop report, in arrival order (paper Fig. 5 measures
  /// exactly these arrival times at the source).
  using ReportCallback = std::function<void(const TracerouteReportMsg&)>;
  using DoneCallback = std::function<void(const TracerouteDoneMsg&)>;

  explicit TracerouteProcess(kernel::Node& node);
  ~TracerouteProcess() override;

  void start() override;
  void stop() override;

  /// Run as the source. Reports stream via `on_report`; `on_done` fires
  /// when the final hop reported or the deadline passed.
  void run(const TracerouteParams& params, ReportCallback on_report,
           DoneCallback on_done);

  [[nodiscard]] bool client_active() const noexcept { return active_; }

  void set_callbacks(ReportCallback on_report, DoneCallback on_done) {
    on_report_ = std::move(on_report);
    on_done_ = std::move(on_done);
  }

 private:
  struct TaskContext {
    std::uint16_t task_id = 0;
    net::Addr origin = 0;
    net::Addr final_dst = 0;
    std::uint8_t hop_index = 0;
    net::Port routing_port = 0;
    std::uint8_t length = 0;
  };

  void on_packet(const net::NetPacket& pkt, const net::LinkContext& ctx);
  void handle_probe(const net::NetPacket& pkt, const net::LinkContext& ctx);
  void handle_reply(const net::NetPacket& pkt, const net::LinkContext& ctx);
  void handle_report(const net::NetPacket& pkt, const net::LinkContext& ctx);

  /// Execute one traceroute task at this node (Fig. 4, left box).
  void initiate_task(const TaskContext& task);
  void begin_task(const TaskContext& task);
  void finish_task();
  void send_task_probe();
  void task_timeout();
  void emit_report(const TracerouteReportMsg& report);
  void deliver_report_to_source(const TracerouteReportMsg& report,
                                net::Addr origin, net::Port routing_port);
  void client_done();
  [[nodiscard]] bool task_seen(std::uint16_t task_id, std::uint8_t hop);

  void start_round();
  void round_done();

  // client state (when this node is the source)
  TracerouteParams params_;
  ReportCallback on_report_;
  DoneCallback on_done_;
  bool active_ = false;
  bool subscribed_ = false;
  int current_round_ = 0;
  std::uint16_t client_task_id_ = 0;
  std::uint8_t reports_received_ = 0;
  std::uint8_t max_hop_seen_ = 0;
  sim::EventHandle total_timer_;

  // per-task sender state (any node can be running one task)
  bool task_active_ = false;
  TaskContext task_;
  net::Addr task_next_ = 0;
  std::int64_t task_t1_ns_ = 0;
  std::uint8_t task_queue_local_ = 0;
  int task_attempts_ = 0;
  sim::EventHandle hop_timer_;
  util::RngStream retry_rng_;

  std::uint16_t next_task_id_ = 1;
  /// Duplicate-initiation guard: (task_id, hop) pairs already executed.
  std::array<std::uint32_t, 16> seen_tasks_{};
  std::size_t seen_next_ = 0;
  /// Tasks waiting while another is in flight (concurrent traces through
  /// the same node); mote-sized bound.
  std::vector<TaskContext> pending_tasks_;
};

}  // namespace liteview::lv
