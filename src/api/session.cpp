#include "api/session.hpp"

#include <algorithm>
#include <random>

namespace liteview::api {

bool RateLimiter::allow(Clock::time_point now) {
  if (!cfg_.enabled) return true;
  if (!primed_) {
    last_ = now;
    primed_ = true;
  }
  const double dt =
      std::chrono::duration<double>(now - last_).count();
  last_ = now;
  tokens_ = std::min(cfg_.burst, tokens_ + dt * cfg_.commands_per_sec);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

namespace {

[[nodiscard]] std::uint64_t seed_or_random(std::uint64_t seed) {
  if (seed != 0) return seed;
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

}  // namespace

SessionManager::SessionManager(SimCore& core, SessionManagerConfig cfg)
    : core_(core),
      cfg_(cfg),
      secrets_(seed_or_random(cfg.token_seed), "api.session.secrets") {}

std::optional<SessionManager::Created> SessionManager::create() {
  const auto now = Clock::now();
  std::shared_ptr<Session> s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.size() >= cfg_.max_sessions) return std::nullopt;
    const std::uint32_t id = next_id_++;
    s = std::make_shared<Session>(id, secrets_.next_u64(), cfg_.rate, now);
    sessions_.emplace(id, s);
    ++created_;
  }
  Created out;
  out.session = s;
  out.token = format_token(SessionToken{s->id, s->secret});
  return out;
}

SessionManager::Access SessionManager::access(const SessionToken& token,
                                              bool count_command,
                                              std::shared_ptr<Session>& out) {
  std::shared_ptr<Session> s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(token.session_id);
    if (it == sessions_.end()) return Access::kNotFound;
    s = it->second;
  }
  if (s->secret != token.secret) return Access::kBadToken;
  out = s;
  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(s->mu);
  s->last_active = now;
  if (count_command) {
    if (!s->limiter.allow(now)) {
      ++s->rate_limited;
      return Access::kRateLimited;
    }
    ++s->commands;
  }
  return Access::kOk;
}

bool SessionManager::close(std::uint32_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.erase(id) == 0) return false;
  }
  core_.close_session(id);
  return true;
}

std::size_t SessionManager::evict_idle(Clock::time_point now) {
  std::vector<std::uint32_t> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, s] : sessions_) {
      std::lock_guard<std::mutex> slock(s->mu);
      if (now - s->last_active >= cfg_.idle_ttl) expired.push_back(id);
    }
    for (const std::uint32_t id : expired) sessions_.erase(id);
    evicted_ += expired.size();
  }
  for (const std::uint32_t id : expired) core_.close_session(id);
  return expired.size();
}

std::size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::uint64_t SessionManager::created_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::uint64_t SessionManager::evicted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

}  // namespace liteview::api
