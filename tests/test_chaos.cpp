// Chaos campaign engine: generator validity, oracle semantics, campaign
// determinism, and — the acceptance loop — a deliberately planted
// regression that the oracles must catch and the shrinker must reduce to
// a handful of clauses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/generator.hpp"
#include "chaos/oracle.hpp"
#include "chaos/shell.hpp"
#include "chaos/shrink.hpp"
#include "fault/fault_plane.hpp"
#include "fault/scenario.hpp"
#include "testbed/testbed.hpp"
#include "trace/diff.hpp"

namespace liteview {
namespace {

// ---- generator ---------------------------------------------------------

TEST(ChaosGenerator, ScenariosAreValidAndRoundTrip) {
  chaos::GeneratorConfig cfg;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const fault::Scenario sc = chaos::generate_scenario(seed, cfg);
    ASSERT_FALSE(sc.empty()) << "seed " << seed;
    ASSERT_LE(sc.clause_count(), cfg.max_clauses) << "seed " << seed;

    // Serialized text parses back to the identical value (what lets the
    // campaign store cells as text and the shrinker emit .scn files).
    const std::string text = fault::serialize_scenario(sc);
    fault::ScenarioParseError err;
    const auto back = fault::parse_scenario(text, &err);
    ASSERT_TRUE(back.has_value())
        << "seed " << seed << ": " << err.to_string() << "\n" << text;
    EXPECT_EQ(*back, sc) << "seed " << seed;
  }
}

TEST(ChaosGenerator, SameSeedSameScenario) {
  const chaos::GeneratorConfig cfg;
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(chaos::generate_scenario(seed, cfg),
              chaos::generate_scenario(seed, cfg));
  }
}

TEST(ChaosGenerator, ScenariosLoadOntoMatchingDeployment) {
  chaos::GeneratorConfig cfg;
  cfg.nodes = 4;
  auto tb = testbed::Testbed::surveyed_line(cfg.nodes,
                                            testbed::Testbed::paper_config(3));
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const fault::Scenario sc = chaos::generate_scenario(seed, cfg);
    std::string err;
    EXPECT_TRUE(tb->fault().load(sc, &err))
        << "seed " << seed << ": " << err << "\n"
        << fault::serialize_scenario(sc);
  }
}

TEST(ChaosGenerator, ActivityEndsInsideTheHorizon) {
  chaos::GeneratorConfig cfg;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const fault::Scenario sc = chaos::generate_scenario(seed, cfg);
    // Quiesce waits for last_fault_activity + grace; a scenario whose
    // tail runs past the horizon would starve the quiesce oracles.
    EXPECT_LE(chaos::last_fault_activity(sc).nanoseconds(),
              cfg.horizon.nanoseconds())
        << "seed " << seed << "\n" << fault::serialize_scenario(sc);
  }
}

TEST(ChaosGenerator, TogglesRestrictClauseKinds) {
  chaos::GeneratorConfig cfg;
  cfg.with_bursts = false;
  cfg.with_jams = false;
  cfg.with_linkdowns = false;
  cfg.with_churn = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const fault::Scenario sc = chaos::generate_scenario(seed, cfg);
    EXPECT_TRUE(sc.bursts.empty() && sc.jams.empty() &&
                sc.link_downs.empty() && sc.churns.empty());
    EXPECT_FALSE(sc.crashes.empty());
  }
}

// ---- oracle framework --------------------------------------------------

TEST(ChaosOracle, RecordsFirstViolationPerOracleAndPhase) {
  chaos::OracleSet set;
  int calls = 0;
  set.add("always-bad", [&calls]() -> std::optional<std::string> {
    ++calls;
    return "violation " + std::to_string(calls);
  });
  set.add("always-good", []() -> std::optional<std::string> {
    return std::nullopt;
  });

  set.run("inline");
  set.run("inline");   // same (oracle, phase): violated check not re-run
  set.run("quiesce");  // new phase: checked and recorded once more
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(set.failures().size(), 2u);
  EXPECT_EQ(set.failures()[0].oracle, "always-bad");
  EXPECT_EQ(set.failures()[0].when, "inline");
  EXPECT_EQ(set.failures()[0].detail, "violation 1");
  EXPECT_EQ(set.failures()[1].when, "quiesce");
  EXPECT_FALSE(set.clean());

  set.clear_failures();
  EXPECT_TRUE(set.clean());
}

TEST(ChaosOracle, TracerouteChecksRejectUntypedAndPhantomHops) {
  lv::TraceRun run;
  const auto report = [](std::uint8_t hop, bool reached,
                         lv::TrFailReason why) {
    lv::TimedReport tr;
    tr.report.task_id = 9;
    tr.report.hop_index = hop;
    tr.report.reached = reached;
    tr.report.fail_reason = why;
    return tr;
  };

  // Healthy run: two reached hops then a typed failure.
  run.reports = {report(0, true, lv::TrFailReason::kNone),
                 report(1, true, lv::TrFailReason::kNone),
                 report(2, false, lv::TrFailReason::kNoReply)};
  EXPECT_FALSE(chaos::check_traceroute_run(run).has_value());

  // Unreached hop without a typed reason: the exact symptom the paper's
  // partial-path reporting exists to prevent.
  run.reports = {report(0, false, lv::TrFailReason::kNone)};
  const auto untyped = chaos::check_traceroute_run(run);
  ASSERT_TRUE(untyped.has_value());

  // A report past a hard dead-end (kNoRoute): the prober knew the trace
  // could not continue, so anything deeper is a phantom hop.
  run.reports = {report(0, true, lv::TrFailReason::kNone),
                 report(1, false, lv::TrFailReason::kNoRoute),
                 report(2, true, lv::TrFailReason::kNone)};
  const auto phantom = chaos::check_traceroute_run(run);
  ASSERT_TRUE(phantom.has_value());

  // Past a kNoReply hop, deeper reports are allowed: the probe may have
  // arrived with only the reply lost, in which case the probed node
  // continues the trace on its own (found by the 1000-cell campaign,
  // reproduced by tests/scenarios/traceroute_reply_loss.scn).
  run.reports = {report(0, false, lv::TrFailReason::kNoReply),
                 report(1, true, lv::TrFailReason::kNone)};
  EXPECT_FALSE(chaos::check_traceroute_run(run).has_value());
}

TEST(ChaosOracle, HealthyDeploymentPassesEveryOracle) {
  auto tb = testbed::Testbed::surveyed_line(
      4, testbed::Testbed::paper_config(11));
  tb->warm_up();
  chaos::OracleSet quiesce;
  chaos::OracleSet inlineable;
  chaos::install_testbed_oracles(*tb, quiesce, inlineable);
  EXPECT_GE(quiesce.size() + inlineable.size(), 3u);
  quiesce.run("quiesce");
  inlineable.run("quiesce");
  EXPECT_TRUE(quiesce.clean()) << quiesce.failures().front().to_string();
  EXPECT_TRUE(inlineable.clean())
      << inlineable.failures().front().to_string();
}

// ---- cells and campaigns ----------------------------------------------

TEST(ChaosCampaign, CleanCampaignHasNoFailures) {
  chaos::CampaignConfig cfg;
  cfg.cells = 24;
  cfg.base_seed = 7;
  cfg.determinism_every = 8;
  const auto r = chaos::run_campaign(cfg);
  ASSERT_EQ(r.cells.size(), cfg.cells);
  for (const auto& c : r.cells) {
    EXPECT_TRUE(c.ok()) << "cell " << c.index << " seed " << c.seed << ": "
                        << (c.error.empty()
                                ? c.failures.front().to_string()
                                : c.error)
                        << "\n" << c.scenario;
    EXPECT_GT(c.commands_run, 0);
    EXPECT_FALSE(c.scenario.empty());
  }
  EXPECT_EQ(r.failed_cells(), 0u);
  EXPECT_GT(r.cells_per_minute(), 0.0);

  const std::string json = chaos::campaign_report_json(r);
  EXPECT_NE(json.find("\"cells\": 24"), std::string::npos) << json;
  EXPECT_NE(json.find("\"failed_cells\": 0"), std::string::npos) << json;
}

TEST(ChaosCampaign, CellRerunsAreByteIdentical) {
  const std::uint64_t seed = 12345;
  const fault::Scenario sc =
      chaos::generate_scenario(seed, chaos::GeneratorConfig{});
  chaos::CellOptions opt;
  opt.record = true;
  const auto a = chaos::run_cell(seed, sc, opt);
  const auto b = chaos::run_cell(seed, sc, opt);
  ASSERT_FALSE(a.trace.empty());
  const auto d = trace::diff_bytes(a.trace, b.trace);
  EXPECT_TRUE(d.identical) << d.summary;
  EXPECT_EQ(a.commands_run, b.commands_run);
}

TEST(ChaosCampaign, ThreadCountDoesNotChangeResults) {
  chaos::CampaignConfig cfg;
  cfg.cells = 12;
  cfg.base_seed = 99;
  cfg.determinism_every = 0;  // keep the comparison to the cells proper
  cfg.threads = 1;
  const auto serial = chaos::run_campaign(cfg);
  cfg.threads = 4;
  const auto parallel = chaos::run_campaign(cfg);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].seed, parallel.cells[i].seed);
    EXPECT_EQ(serial.cells[i].scenario, parallel.cells[i].scenario);
    EXPECT_EQ(serial.cells[i].ok(), parallel.cells[i].ok());
  }
}

// ---- the acceptance loop: plant a bug, catch it, shrink it -------------

TEST(ChaosCampaign, PlantedRegressionIsCaughtAndShrunkSmall) {
  // Plant the deliberate reliable-termination regression (retry-exhausted
  // messages silently swallowed) and run a small campaign. The oracle
  // must catch it in at least one cell…
  chaos::CampaignConfig cfg;
  cfg.cells = 40;
  cfg.base_seed = 1;
  cfg.determinism_every = 0;
  cfg.cell.inject_termination_bug = true;
  const auto r = chaos::run_campaign(cfg);

  const chaos::CellResult* failing = nullptr;
  for (const auto& c : r.cells) {
    if (c.error.empty() && !c.failures.empty()) {
      failing = &c;
      break;
    }
  }
  ASSERT_NE(failing, nullptr)
      << "planted regression escaped a 40-cell campaign";
  EXPECT_EQ(failing->failures.front().oracle, "reliable-termination")
      << failing->failures.front().to_string();

  // …and the shrinker must reduce the failing cell to a small scenario
  // that still reproduces the same oracle failure.
  const auto sc = fault::parse_scenario(failing->scenario);
  ASSERT_TRUE(sc.has_value());
  const auto shrunk =
      chaos::shrink_scenario(failing->seed, *sc, cfg.cell);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_EQ(shrunk.oracle, "reliable-termination");
  EXPECT_LE(shrunk.final_clauses, 5u);
  EXPECT_LE(shrunk.final_clauses, shrunk.original_clauses);

  // The emitted text is a loadable reproducer.
  const auto reparsed = fault::parse_scenario(shrunk.scenario_text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, shrunk.minimal);
  const auto again =
      chaos::run_cell(failing->seed, shrunk.minimal, cfg.cell);
  ASSERT_FALSE(again.failures.empty());
  EXPECT_EQ(again.failures.front().oracle, "reliable-termination");
}

TEST(ChaosShrink, CleanScenarioReportsNotReproduced) {
  const std::uint64_t seed = 7;
  const fault::Scenario sc =
      chaos::generate_scenario(seed, chaos::GeneratorConfig{});
  const auto res = chaos::shrink_scenario(seed, sc, chaos::CellOptions{});
  EXPECT_FALSE(res.reproduced);
  EXPECT_EQ(res.final_clauses, res.original_clauses);
}

// ---- checked-in reproducer artifacts -----------------------------------

TEST(ChaosScenarioFixtures, EveryCheckedInScnParses) {
  // tests/scenarios/ promises every shrunk artifact loads cleanly.
  std::size_t seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(LV_SCENARIO_DIR)) {
    if (entry.path().extension() != ".scn") continue;
    ++seen;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::stringstream text;
    text << in.rdbuf();
    fault::ScenarioParseError err;
    const auto sc = fault::parse_scenario(text.str(), &err);
    ASSERT_TRUE(sc.has_value())
        << entry.path() << ": " << err.to_string();
    EXPECT_FALSE(sc->empty()) << entry.path();
  }
  EXPECT_GE(seen, 2u);  // the two PR-era reproducers at minimum
}

// ---- shell surface -----------------------------------------------------

TEST(ChaosShell, GenRunAndCheckCommands) {
  auto tb = testbed::Testbed::surveyed_line(
      3, testbed::Testbed::paper_config(5));
  tb->warm_up();
  chaos::install_shell_commands(*tb);

  // gen prints a scenario that parses; same seed twice is identical.
  const std::string scn = tb->shell().execute("chaos gen seed=5");
  EXPECT_TRUE(fault::parse_scenario(scn).has_value()) << scn;
  EXPECT_EQ(scn, tb->shell().execute("chaos gen seed=5"));

  // check runs the quiesce oracles against the live (healthy) testbed.
  const std::string check = tb->shell().execute("chaos check");
  EXPECT_NE(check.find("oracles clean"), std::string::npos) << check;

  // run executes a miniature campaign inline.
  const std::string run = tb->shell().execute("chaos run cells=4 seed=3");
  EXPECT_NE(run.find("campaign: 4 cells, 0 failed"), std::string::npos)
      << run;

  // Unknown subcommands produce usage, not an interpreter error.
  EXPECT_NE(tb->shell().execute("chaos bogus").find("usage:"),
            std::string::npos);
}

}  // namespace
}  // namespace liteview
