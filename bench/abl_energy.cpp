// Ablation A6 — what does interactive management *cost*?
//
// The paper's efficiency goal says the toolkit "will introduce zero
// extra overhead if not activated"; this bench extends the claim to the
// mote's real currency, energy. We run a 9-node line for 60 simulated
// seconds three ways — idle, idle with a full diagnostic session
// (traceroute + pings + neighbor lists), and idle with fast beacons —
// and split each node's energy into TX and listening.
#include <cstdio>

#include "bench/common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace liteview;

struct Outcome {
  double tx_mj_total = 0;      // sum over nodes
  double listen_mj_total = 0;  // sum over nodes
};

Outcome measure(std::uint64_t seed, bool diagnose, int beacon_s) {
  auto tb = testbed::Testbed::paper_line(9, seed);
  tb->warm_up();
  for (std::size_t i = 0; i < tb->size(); ++i) {
    tb->node(i).set_beacon_period(sim::SimTime::sec(beacon_s));
  }

  const auto deadline = tb->sim().now() + sim::SimTime::sec(60);
  if (diagnose) {
    // One full diagnostic session, paper-style.
    (void)tb->workstation().traceroute(
        1, "192.168.0.9 round=1 length=32 port=10");
    (void)tb->workstation().ping(1, "192.168.0.9 round=3 length=16 port=10",
                                 3);
    (void)tb->workstation().nbr_list(1, true);
    (void)tb->workstation().radio_get(1);
  }
  if (tb->sim().now() < deadline) {
    tb->sim().run_until(deadline);
  }

  Outcome out;
  for (std::size_t i = 0; i < tb->size(); ++i) {
    out.tx_mj_total += tb->node(i).energy_tx_mj();
    out.listen_mj_total += tb->node(i).energy_listen_mj();
  }
  return out;
}

}  // namespace

int main() {
  bench::header(
      "Ablation A6 — energy cost of interactive management (9 nodes, 60 "
      "simulated seconds)");

  constexpr int kReps = 4;
  auto row = [&](const char* label, bool diagnose, int beacon_s) {
    util::RunningStats tx, listen;
    const auto rs = bench::replicate<Outcome>(
        kReps, 91, [&](std::uint64_t seed) {
          return measure(seed, diagnose, beacon_s);
        });
    for (const auto& o : rs) {
      tx.add(o.tx_mj_total);
      listen.add(o.listen_mj_total);
    }
    std::printf("%-38s %10.2f %14.1f %10.4f%%\n", label, tx.mean(),
                listen.mean(),
                100.0 * tx.mean() / (tx.mean() + listen.mean()));
    return tx.mean();
  };

  std::printf("\n%-38s %10s %14s %10s\n", "scenario", "TX (mJ)",
              "listen (mJ)", "TX share");
  const double idle = row("idle, 2 s beacons", false, 2);
  const double mgmt = row("2 s beacons + diagnostic session", true, 2);
  row("idle, 30 s beacons", false, 30);
  const double mgmt_cost = mgmt - idle;

  bench::section("reading");
  std::printf(
      "A complete diagnostic session (8-hop traceroute, 3 multi-hop\n"
      "pings, table + radio queries) costs ~%.2f mJ of TX across the\n"
      "whole network — against ~%.0f J the deployment burns *listening*\n"
      "in the same minute. Idle-listening dominates by four orders of\n"
      "magnitude; LiteView's interactivity is energetically free, and\n"
      "the real lever is the beacon period (compare rows 1 and 3).\n",
      mgmt_cost, 9 * 60 * 18.8 * 3.0 / 1000.0);
  return 0;
}
