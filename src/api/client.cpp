#include "api/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/strings.hpp"

namespace liteview::api {
namespace {

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

[[nodiscard]] std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string_view ClientResponse::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
    : host_(std::move(host)), port_(port), timeout_(timeout) {}

HttpClient::~HttpClient() { disconnect(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_(other.timeout_),
      fd_(other.fd_),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

void HttpClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

bool HttpClient::connect_if_needed() {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    disconnect();
    return false;
  }
  return true;
}

std::optional<ClientResponse> HttpClient::read_response() {
  // Head first.
  std::string head = std::move(pending_);
  pending_.clear();
  std::size_t head_end = std::string::npos;
  char buf[8192];
  for (;;) {
    head_end = head.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (head.size() > (1u << 20)) return std::nullopt;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      disconnect();
      return std::nullopt;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }

  ClientResponse resp;
  std::string_view hv = std::string_view(head).substr(0, head_end);
  const auto line_end = hv.find("\r\n");
  std::string_view status_line = hv.substr(0, line_end);
  if (status_line.size() < 12 || status_line.rfind("HTTP/1.", 0) != 0)
    return std::nullopt;
  resp.status = std::atoi(std::string(status_line.substr(9, 3)).c_str());
  hv = line_end == std::string_view::npos ? std::string_view{}
                                          : hv.substr(line_end + 2);
  while (!hv.empty()) {
    const auto nl = hv.find("\r\n");
    std::string_view line = hv.substr(0, nl);
    hv = nl == std::string_view::npos ? std::string_view{} : hv.substr(nl + 2);
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    resp.headers.emplace_back(lower(line.substr(0, colon)),
                              std::string(value));
  }

  std::string rest = head.substr(head_end + 4);
  if (lower(std::string(resp.header("transfer-encoding"))) == "chunked") {
    resp.chunked = true;
    ChunkedDecoder dec;
    ChunkStatus st = dec.feed(rest, resp.body);
    while (st == ChunkStatus::kIncomplete) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        disconnect();
        return std::nullopt;
      }
      st = dec.feed(std::string_view(buf, static_cast<std::size_t>(n)),
                    resp.body);
    }
    if (st != ChunkStatus::kDone) {
      disconnect();
      return std::nullopt;
    }
    pending_ = std::string(dec.leftover());
  } else {
    const std::string_view cl = resp.header("content-length");
    std::size_t want = 0;
    for (const char c : cl) {
      if (c < '0' || c > '9') return std::nullopt;
      want = want * 10 + static_cast<std::size_t>(c - '0');
    }
    while (rest.size() < want) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        disconnect();
        return std::nullopt;
      }
      rest.append(buf, static_cast<std::size_t>(n));
    }
    resp.body = rest.substr(0, want);
    pending_ = rest.substr(want);
  }

  if (lower(std::string(resp.header("connection"))) == "close") disconnect();
  return resp;
}

std::optional<ClientResponse> HttpClient::request(std::string_view method,
                                                  std::string_view target,
                                                  std::string_view bearer_token,
                                                  std::string_view body,
                                                  bool keep_alive) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool fresh = fd_ < 0;
    if (!connect_if_needed()) return std::nullopt;
    std::string req;
    req += method;
    req += " ";
    req += target;
    req += " HTTP/1.1\r\nHost: ";
    req += host_;
    req += "\r\n";
    if (!bearer_token.empty()) {
      req += "Authorization: Bearer ";
      req += bearer_token;
      req += "\r\n";
    }
    if (!body.empty() || method == "POST") {
      req += util::format("Content-Length: %zu\r\n", body.size());
    }
    if (!keep_alive) req += "Connection: close\r\n";
    req += "\r\n";
    req += body;
    if (!send_all(fd_, req)) {
      disconnect();
      if (fresh) return std::nullopt;
      continue;  // stale keep-alive connection: retry once on a new one
    }
    auto resp = read_response();
    if (resp) return resp;
    if (fresh) return std::nullopt;
  }
  return std::nullopt;
}

std::optional<ClientResponse> HttpClient::request_half_close(
    std::string_view method, std::string_view target,
    std::string_view bearer_token, std::string_view body) {
  disconnect();
  if (!connect_if_needed()) return std::nullopt;
  std::string req;
  req += method;
  req += " ";
  req += target;
  req += " HTTP/1.1\r\nHost: ";
  req += host_;
  req += "\r\n";
  if (!bearer_token.empty()) {
    req += "Authorization: Bearer ";
    req += bearer_token;
    req += "\r\n";
  }
  req += util::format("Content-Length: %zu\r\n\r\n", body.size());
  req += body;
  if (!send_all(fd_, req)) {
    disconnect();
    return std::nullopt;
  }
  ::shutdown(fd_, SHUT_WR);  // we are done sending; the response must still flow
  auto resp = read_response();
  disconnect();
  return resp;
}

std::optional<std::string> HttpClient::raw(std::string_view bytes,
                                           std::size_t max_bytes) {
  disconnect();
  if (!connect_if_needed()) return std::nullopt;
  if (!send_all(fd_, bytes)) {
    disconnect();
    return std::nullopt;
  }
  ::shutdown(fd_, SHUT_WR);
  std::string out;
  char buf[8192];
  while (out.size() < max_bytes) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  disconnect();
  return out;
}

std::string CommandStream::transcript() const {
  for (const auto& ev : events) {
    if (ev.event == "transcript") return ev.data;
  }
  return {};
}

std::optional<CommandStream> post_command(HttpClient& client,
                                          std::uint32_t session_id,
                                          std::string_view token,
                                          std::string_view line,
                                          int* status_out) {
  const auto resp = client.request(
      "POST", util::format("/v1/sessions/%u/command", session_id), token,
      line);
  if (!resp) return std::nullopt;
  if (status_out != nullptr) *status_out = resp->status;
  if (resp->status != 200) return std::nullopt;
  CommandStream out;
  out.bytes = resp->body;
  if (!sse_decode(out.bytes, out.events)) return std::nullopt;
  return out;
}

}  // namespace liteview::api
