// Session bookkeeping for the control plane: token auth, per-session
// rate limits, idle eviction.
//
// Locking discipline (outer to inner): SessionManager::mu_ guards the
// id→session map and is held only for map operations — never across a
// SimCore call or socket I/O. Session::mu guards one session's mutable
// state (rate bucket, idle clock). SimCore::mu_ is innermost and is
// never acquired while either of these is held *except* through the
// fixed manager→core edge in create/close/evict (SimCore never calls
// back into the manager, so the ordering cannot cycle).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/sim_core.hpp"
#include "api/token.hpp"
#include "util/rng.hpp"

namespace liteview::api {

using Clock = std::chrono::steady_clock;

struct RateLimitConfig {
  bool enabled = true;
  double commands_per_sec = 50.0;  ///< sustained refill rate
  double burst = 16.0;             ///< bucket capacity
};

/// Token bucket over a caller-supplied clock. Callers hold Session::mu.
class RateLimiter {
 public:
  explicit RateLimiter(const RateLimitConfig& cfg)
      : cfg_(cfg), tokens_(cfg.burst) {}

  [[nodiscard]] bool allow(Clock::time_point now);

 private:
  RateLimitConfig cfg_;
  double tokens_;
  Clock::time_point last_{};
  bool primed_ = false;
};

struct Session {
  std::uint32_t id = 0;
  std::uint64_t secret = 0;

  std::mutex mu;  ///< guards the fields below
  RateLimiter limiter;
  Clock::time_point last_active;
  std::uint64_t commands = 0;
  std::uint64_t rate_limited = 0;

  Session(std::uint32_t id_, std::uint64_t secret_,
          const RateLimitConfig& rate, Clock::time_point now)
      : id(id_), secret(secret_), limiter(rate), last_active(now) {}
};

struct SessionManagerConfig {
  RateLimitConfig rate;
  std::chrono::milliseconds idle_ttl{60'000};
  std::size_t max_sessions = 4096;
  /// Seed for secret generation; 0 draws one from std::random_device
  /// (tests pin it for reproducible tokens).
  std::uint64_t token_seed = 0;
};

class SessionManager {
 public:
  SessionManager(SimCore& core, SessionManagerConfig cfg);

  struct Created {
    std::shared_ptr<Session> session;
    std::string token;
  };
  /// nullopt when the session table is full.
  [[nodiscard]] std::optional<Created> create();

  enum class Access { kOk, kNotFound, kBadToken, kRateLimited };

  /// Authenticate + touch + rate-check in one step. On kOk (and
  /// kRateLimited) `out` is the session. Rate checking applies only
  /// when `count_command` (command submission, not status reads).
  Access access(const SessionToken& token, bool count_command,
                std::shared_ptr<Session>& out);

  /// Close + drop the session (and its SimCore shell state).
  bool close(std::uint32_t id);

  /// Evict sessions idle longer than idle_ttl; returns how many.
  std::size_t evict_idle(Clock::time_point now);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t created_total() const;
  [[nodiscard]] std::uint64_t evicted_total() const;

 private:
  SimCore& core_;
  SessionManagerConfig cfg_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, std::shared_ptr<Session>> sessions_;
  util::RngStream secrets_;
  std::uint32_t next_id_ = 1;
  std::uint64_t created_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace liteview::api
