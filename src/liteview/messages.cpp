#include "liteview/messages.hpp"

#include "util/bytes.hpp"

namespace liteview::lv {

std::vector<std::uint8_t> encode_mgmt(MsgType type,
                                      std::span<const std::uint8_t> body) {
  util::ByteWriter w(1 + body.size());
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(body);
  return std::move(w).take();
}

std::optional<MgmtMessage> decode_mgmt(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return std::nullopt;
  MgmtMessage m;
  m.type = static_cast<MsgType>(bytes[0]);
  m.body.assign(bytes.begin() + 1, bytes.end());
  return m;
}

// ---- simple bodies ----------------------------------------------------

std::vector<std::uint8_t> encode_body(const RadioSetPower& b) {
  return {b.level};
}
std::optional<RadioSetPower> decode_radio_set_power(
    std::span<const std::uint8_t> s) {
  if (s.size() != 1) return std::nullopt;
  return RadioSetPower{s[0]};
}

std::vector<std::uint8_t> encode_body(const RadioSetChannel& b) {
  return {b.channel};
}
std::optional<RadioSetChannel> decode_radio_set_channel(
    std::span<const std::uint8_t> s) {
  if (s.size() != 1) return std::nullopt;
  return RadioSetChannel{s[0]};
}

std::vector<std::uint8_t> encode_body(const NbrList& b) {
  return {static_cast<std::uint8_t>(b.with_link_info ? 1 : 0)};
}
std::optional<NbrList> decode_nbr_list(std::span<const std::uint8_t> s) {
  if (s.size() != 1) return std::nullopt;
  return NbrList{s[0] != 0};
}

std::vector<std::uint8_t> encode_body(const NbrBlacklist& b) {
  util::ByteWriter w;
  w.u16(b.addr);
  return std::move(w).take();
}
std::optional<NbrBlacklist> decode_nbr_blacklist(
    std::span<const std::uint8_t> s) {
  if (s.size() != 2) return std::nullopt;
  util::ByteReader r(s);
  return NbrBlacklist{r.u16()};
}

std::vector<std::uint8_t> encode_body(const NbrUpdate& b) {
  util::ByteWriter w;
  w.u32(b.beacon_period_ms);
  return std::move(w).take();
}
std::optional<NbrUpdate> decode_nbr_update(std::span<const std::uint8_t> s) {
  if (s.size() != 4) return std::nullopt;
  util::ByteReader r(s);
  return NbrUpdate{r.u32()};
}

std::vector<std::uint8_t> encode_body(const ExecCommand& b) {
  util::ByteWriter w;
  w.str8(b.params);
  return std::move(w).take();
}
std::optional<ExecCommand> decode_exec(std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  ExecCommand c;
  c.params = r.str8();
  if (!r.ok()) return std::nullopt;
  return c;
}

std::vector<std::uint8_t> encode_body(const Status& b) {
  util::ByteWriter w;
  w.u8(b.ok ? 1 : 0);
  w.str8(b.detail);
  return std::move(w).take();
}
std::optional<Status> decode_status(std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  Status st;
  st.ok = r.u8() != 0;
  st.detail = r.str8();
  if (!r.ok()) return std::nullopt;
  return st;
}

std::vector<std::uint8_t> encode_body(const RadioConfig& b) {
  return {b.power, b.channel};
}
std::optional<RadioConfig> decode_radio_config(
    std::span<const std::uint8_t> s) {
  if (s.size() != 2) return std::nullopt;
  return RadioConfig{s[0], s[1]};
}

// ---- neighbor table ----------------------------------------------------

std::vector<std::uint8_t> encode_body(const NbrTableMsg& b) {
  util::ByteWriter w;
  w.u8(b.with_link_info ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(b.entries.size()));
  for (const auto& e : b.entries) {
    w.u16(e.addr);
    w.str8(e.name);
    w.u8(e.lqi);
    w.i8(e.rssi);
    w.u8(e.blacklisted ? 1 : 0);
    w.u32(e.age_ms);
  }
  return std::move(w).take();
}

std::optional<NbrTableMsg> decode_nbr_table(std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  NbrTableMsg m;
  m.with_link_info = r.u8() != 0;
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    NbrTableEntryMsg e;
    e.addr = r.u16();
    e.name = r.str8();
    e.lqi = r.u8();
    e.rssi = r.i8();
    e.blacklisted = r.u8() != 0;
    e.age_ms = r.u32();
    m.entries.push_back(std::move(e));
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

// ---- ping result ---------------------------------------------------------

std::vector<std::uint8_t> encode_body(const PingResultMsg& b) {
  util::ByteWriter w;
  w.u16(b.target);
  w.u8(b.rounds);
  w.u8(b.payload_len);
  w.u8(b.power);
  w.u8(b.channel);
  w.u8(static_cast<std::uint8_t>(b.rounds_data.size()));
  for (const auto& rd : b.rounds_data) {
    w.u8(rd.round);
    w.u8(rd.received ? 1 : 0);
    w.u32(rd.rtt_us);
    w.u8(rd.lqi_fwd);
    w.u8(rd.lqi_bwd);
    w.i8(rd.rssi_fwd);
    w.i8(rd.rssi_bwd);
    w.u8(rd.queue_local);
    w.u8(rd.queue_remote);
    w.u8(static_cast<std::uint8_t>(rd.hops_fwd.size()));
    for (const auto& h : rd.hops_fwd) {
      w.u8(h.lqi);
      w.i8(h.rssi);
    }
    w.u8(static_cast<std::uint8_t>(rd.hops_bwd.size()));
    for (const auto& h : rd.hops_bwd) {
      w.u8(h.lqi);
      w.i8(h.rssi);
    }
  }
  return std::move(w).take();
}

std::optional<PingResultMsg> decode_ping_result(
    std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  PingResultMsg m;
  m.target = r.u16();
  m.rounds = r.u8();
  m.payload_len = r.u8();
  m.power = r.u8();
  m.channel = r.u8();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    PingRoundMsg rd;
    rd.round = r.u8();
    rd.received = r.u8() != 0;
    rd.rtt_us = r.u32();
    rd.lqi_fwd = r.u8();
    rd.lqi_bwd = r.u8();
    rd.rssi_fwd = r.i8();
    rd.rssi_bwd = r.i8();
    rd.queue_local = r.u8();
    rd.queue_remote = r.u8();
    const std::uint8_t nf = r.u8();
    for (std::uint8_t k = 0; k < nf; ++k) {
      net::PadEntry e;
      e.lqi = r.u8();
      e.rssi = r.i8();
      rd.hops_fwd.push_back(e);
    }
    const std::uint8_t nb = r.u8();
    for (std::uint8_t k = 0; k < nb; ++k) {
      net::PadEntry e;
      e.lqi = r.u8();
      e.rssi = r.i8();
      rd.hops_bwd.push_back(e);
    }
    m.rounds_data.push_back(std::move(rd));
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

// ---- traceroute ---------------------------------------------------------

const char* to_string(TrFailReason r) {
  switch (r) {
    case TrFailReason::kNone: return "ok";
    case TrFailReason::kNoRoute: return "no route";
    case TrFailReason::kNoReply: return "no reply";
  }
  return "?";
}

std::vector<std::uint8_t> encode_body(const TracerouteReportMsg& b) {
  util::ByteWriter w;
  w.u16(b.task_id);
  w.u8(b.hop_index);
  w.u16(b.prober);
  w.u16(b.next);
  w.u8(b.reached ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(b.fail_reason));
  w.u32(b.rtt_us);
  w.u8(b.lqi_fwd);
  w.u8(b.lqi_bwd);
  w.i8(b.rssi_fwd);
  w.i8(b.rssi_bwd);
  w.u8(b.queue_near);
  w.u8(b.queue_far);
  w.u8(b.is_final ? 1 : 0);
  return std::move(w).take();
}

std::optional<TracerouteReportMsg> decode_traceroute_report(
    std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  TracerouteReportMsg m;
  m.task_id = r.u16();
  m.hop_index = r.u8();
  m.prober = r.u16();
  m.next = r.u16();
  m.reached = r.u8() != 0;
  m.fail_reason = static_cast<TrFailReason>(r.u8());
  m.rtt_us = r.u32();
  m.lqi_fwd = r.u8();
  m.lqi_bwd = r.u8();
  m.rssi_fwd = r.i8();
  m.rssi_bwd = r.i8();
  m.queue_near = r.u8();
  m.queue_far = r.u8();
  m.is_final = r.u8() != 0;
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode_body(const TracerouteDoneMsg& b) {
  util::ByteWriter w;
  w.u16(b.task_id);
  w.u8(b.hops);
  w.u8(b.received);
  w.str8(b.protocol_name);
  return std::move(w).take();
}

std::optional<TracerouteDoneMsg> decode_traceroute_done(
    std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  TracerouteDoneMsg m;
  m.task_id = r.u16();
  m.hops = r.u8();
  m.received = r.u8();
  m.protocol_name = r.str8();
  if (!r.ok()) return std::nullopt;
  return m;
}

// ---- process list --------------------------------------------------------

std::vector<std::uint8_t> encode_body(const ProcessListMsg& b) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(b.processes.size()));
  for (const auto& p : b.processes) {
    w.str8(p.name);
    w.u8(p.running ? 1 : 0);
    w.u32(p.flash_bytes);
    w.u32(p.ram_bytes);
  }
  return std::move(w).take();
}

std::optional<ProcessListMsg> decode_process_list(
    std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  ProcessListMsg m;
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    ProcessInfoMsg p;
    p.name = r.str8();
    p.running = r.u8() != 0;
    p.flash_bytes = r.u32();
    p.ram_bytes = r.u32();
    m.processes.push_back(std::move(p));
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

// ---- event log -------------------------------------------------------------

std::vector<std::uint8_t> encode_body(const LogDataMsg& b) {
  util::ByteWriter w;
  w.u32(b.total);
  w.u32(b.dropped);
  w.u8(static_cast<std::uint8_t>(b.events.size()));
  for (const auto& e : b.events) {
    w.u32(e.time_ms);
    w.u16(e.code);
    w.u32(e.arg);
  }
  return std::move(w).take();
}

std::optional<LogDataMsg> decode_log_data(std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  LogDataMsg m;
  m.total = r.u32();
  m.dropped = r.u32();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    LogEventMsg e;
    e.time_ms = r.u32();
    e.code = r.u16();
    e.arg = r.u32();
    m.events.push_back(e);
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

// ---- energy ---------------------------------------------------------------

std::vector<std::uint8_t> encode_body(const EnergyMsg& b) {
  util::ByteWriter w;
  w.u32(b.uptime_ms);
  w.u64(b.tx_uj);
  w.u64(b.listen_uj);
  return std::move(w).take();
}

std::optional<EnergyMsg> decode_energy(std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  EnergyMsg m;
  m.uptime_ms = r.u32();
  m.tx_uj = r.u64();
  m.listen_uj = r.u64();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return m;
}

// ---- channel scan -----------------------------------------------------------

std::vector<std::uint8_t> encode_body(const ScanRequest& b) {
  util::ByteWriter w;
  w.u16(b.dwell_ms);
  return std::move(w).take();
}

std::optional<ScanRequest> decode_scan_request(
    std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  ScanRequest m;
  m.dwell_ms = r.u16();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode_body(const ScanDataMsg& b) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(b.entries.size()));
  for (const auto& e : b.entries) {
    w.u8(e.channel);
    w.i8(e.rssi);
  }
  return std::move(w).take();
}

std::optional<ScanDataMsg> decode_scan_data(
    std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  ScanDataMsg m;
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    ScanEntryMsg e;
    e.channel = r.u8();
    e.rssi = r.i8();
    m.entries.push_back(e);
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

// ---- netstat ----------------------------------------------------------------

std::vector<std::uint8_t> encode_body(const NetstatMsg& b) {
  util::ByteWriter w;
  w.u32(b.mac_enqueued);
  w.u32(b.mac_sent);
  w.u32(b.mac_dropped_queue_full);
  w.u32(b.mac_dropped_channel_busy);
  w.u32(b.mac_rx_delivered);
  w.u32(b.mac_rx_crc_failures);
  w.u32(b.mac_cca_busy);
  w.u32(b.net_delivered);
  w.u32(b.net_local);
  w.u32(b.net_no_subscriber);
  w.u32(b.net_malformed);
  w.u8(static_cast<std::uint8_t>(b.protocols.size()));
  for (const auto& p : b.protocols) {
    w.u8(p.port);
    w.str8(p.name);
    w.u32(p.originated);
    w.u32(p.forwarded);
    w.u32(p.delivered);
    w.u32(p.dropped_no_route);
    w.u32(p.dropped_ttl);
    w.u32(p.control_sent);
  }
  return std::move(w).take();
}

std::optional<NetstatMsg> decode_netstat(std::span<const std::uint8_t> s) {
  util::ByteReader r(s);
  NetstatMsg m;
  m.mac_enqueued = r.u32();
  m.mac_sent = r.u32();
  m.mac_dropped_queue_full = r.u32();
  m.mac_dropped_channel_busy = r.u32();
  m.mac_rx_delivered = r.u32();
  m.mac_rx_crc_failures = r.u32();
  m.mac_cca_busy = r.u32();
  m.net_delivered = r.u32();
  m.net_local = r.u32();
  m.net_no_subscriber = r.u32();
  m.net_malformed = r.u32();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    RoutingStatMsg p;
    p.port = r.u8();
    p.name = r.str8();
    p.originated = r.u32();
    p.forwarded = r.u32();
    p.delivered = r.u32();
    p.dropped_no_route = r.u32();
    p.dropped_ttl = r.u32();
    p.control_sent = r.u32();
    m.protocols.push_back(std::move(p));
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace liteview::lv
