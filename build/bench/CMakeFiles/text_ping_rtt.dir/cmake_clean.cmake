file(REMOVE_RECURSE
  "CMakeFiles/text_ping_rtt.dir/text_ping_rtt.cpp.o"
  "CMakeFiles/text_ping_rtt.dir/text_ping_rtt.cpp.o.d"
  "text_ping_rtt"
  "text_ping_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_ping_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
