#include "api/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strings.hpp"

namespace liteview::api {
namespace {

/// Write all of `data`, tolerating short writes; false on error/timeout.
/// MSG_NOSIGNAL: a peer that closed mid-stream must surface as EPIPE,
/// not kill the server process with SIGPIPE.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void set_timeouts(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// "/v1/sessions/<id>[/command]" → id; nullopt when not that shape.
std::optional<std::uint32_t> session_id_from_path(std::string_view path,
                                                  std::string_view* tail) {
  constexpr std::string_view kPrefix = "/v1/sessions/";
  if (path.rfind(kPrefix, 0) != 0) return std::nullopt;
  path.remove_prefix(kPrefix.size());
  const auto slash = path.find('/');
  const std::string_view digits = path.substr(0, slash);
  if (digits.empty() || digits.size() > 9) return std::nullopt;
  std::uint32_t id = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint32_t>(c - '0');
  }
  *tail = slash == std::string_view::npos ? std::string_view{}
                                          : path.substr(slash);
  return id;
}

}  // namespace

ControlPlaneServer::ControlPlaneServer(SimCore& core, ServerConfig cfg)
    : core_(core), cfg_(std::move(cfg)), manager_(core_, cfg_.sessions) {}

ControlPlaneServer::~ControlPlaneServer() { stop(); }

bool ControlPlaneServer::start(std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1)
    return fail("inet_pton");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    return fail("bind");
  if (::listen(listen_fd_, cfg_.listen_backlog) != 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    return fail("getsockname");
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  const int n = cfg_.worker_threads > 0 ? cfg_.worker_threads : 1;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (cfg_.sweep_interval.count() > 0) {
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }
  return true;
}

void ControlPlaneServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (sweeper_.joinable()) sweeper_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

ControlPlaneServer::Stats ControlPlaneServer::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.commands = commands_.load(std::memory_order_relaxed);
  s.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  return s;
}

void ControlPlaneServer::sweeper_loop() {
  while (running_.load(std::memory_order_acquire)) {
    manager_.evict_idle(Clock::now());
    // Sleep in short slices so stop() never waits a full interval.
    auto remaining = cfg_.sweep_interval;
    while (remaining.count() > 0 &&
           running_.load(std::memory_order_acquire)) {
      const auto slice = std::min<std::chrono::milliseconds>(
          remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

void ControlPlaneServer::worker_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 100);
    if (pr <= 0) continue;  // timeout or EINTR: re-check running_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // raced with another worker
    connections_.fetch_add(1, std::memory_order_relaxed);
    set_timeouts(fd, cfg_.io_timeout);
    serve_connection(fd);
    ::close(fd);
  }
}

void ControlPlaneServer::serve_connection(int fd) {
  HttpRequestParser parser(cfg_.limits);
  char buf[4096];
  bool reading = true;
  while (running_.load(std::memory_order_acquire)) {
    // Parse whatever is buffered first (pipelined bytes carried across
    // reset()), then top up from the socket as needed.
    ParseStatus st = parser.feed({});
    if (st == ParseStatus::kIncomplete) {
      if (!reading) return;  // half-closed and no complete request left
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // timeout or reset
      }
      if (n == 0) {
        // Half-close: the peer is done sending. Whatever is buffered is
        // the final request — try to finish it, then answer it.
        reading = false;
        continue;
      }
      st = parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }

    switch (st) {
      case ParseStatus::kIncomplete:
        continue;
      case ParseStatus::kBadRequest:
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, 400, "malformed request\n", false);
        return;
      case ParseStatus::kTooLarge:
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, 413, "request too large\n", false);
        return;
      case ParseStatus::kOk:
        break;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    const bool keep = handle_request(fd, parser.request());
    if (!keep) return;
    parser.reset();
  }
}

bool ControlPlaneServer::respond(
    int fd, int code, std::string_view body, bool keep_alive,
    const std::vector<std::string>& extra_headers) {
  return send_all(fd, http_response(code, "text/plain", body, keep_alive,
                                    extra_headers)) &&
         keep_alive;
}

bool ControlPlaneServer::handle_request(int fd, const HttpRequest& req) {
  const bool keep_alive = req.version == "HTTP/1.1" &&
                          req.header("connection") != "close";
  const std::string_view path = req.path();

  if (path == "/healthz") {
    if (req.method != "GET") return respond(fd, 405, "GET only\n", keep_alive);
    return respond(fd, 200, "ok\n", keep_alive);
  }

  if (path == "/v1/sessions") {
    if (req.method != "POST")
      return respond(fd, 405, "POST only\n", keep_alive);
    if (!cfg_.join_token.empty() &&
        req.header("authorization") != "Bearer " + cfg_.join_token) {
      return respond(fd, 401, "join token required\n", keep_alive);
    }
    const auto created = manager_.create();
    if (!created) return respond(fd, 503, "session table full\n", keep_alive);
    const std::string body =
        util::format("{\"session\":%u,\"token\":\"%s\"}\n",
                     created->session->id, created->token.c_str());
    return send_all(fd, http_response(201, "application/json", body,
                                      keep_alive)) &&
           keep_alive;
  }

  if (path == "/v1/snapshot" || path == "/v1/topology") {
    if (req.method != "GET") return respond(fd, 405, "GET only\n", keep_alive);
    const auto token = parse_bearer(req.header("authorization"));
    if (!token) return respond(fd, 401, "session token required\n", keep_alive);
    std::shared_ptr<Session> s;
    switch (manager_.access(*token, /*count_command=*/true, s)) {
      case SessionManager::Access::kNotFound:
        return respond(fd, 404, "no such session\n", keep_alive);
      case SessionManager::Access::kBadToken:
        return respond(fd, 401, "bad session token\n", keep_alive);
      case SessionManager::Access::kRateLimited:
        rate_limited_.fetch_add(1, std::memory_order_relaxed);
        return respond(fd, 429, "rate limit exceeded\n", keep_alive,
                       {"Retry-After: 1"});
      case SessionManager::Access::kOk:
        break;
    }
    if (path == "/v1/topology") {
      return respond(fd, 200, core_.topology_text(), keep_alive);
    }
    if (req.query("meta")) {
      return respond(fd, 200, core_.snapshot_describe("api snapshot") + "\n",
                     keep_alive);
    }
    const std::vector<std::uint8_t> bytes =
        core_.snapshot_bytes("api snapshot");
    const std::string_view body(reinterpret_cast<const char*>(bytes.data()),
                                bytes.size());
    return send_all(fd, http_response(200, "application/octet-stream", body,
                                      keep_alive)) &&
           keep_alive;
  }

  std::string_view tail;
  const auto sid = session_id_from_path(path, &tail);
  if (sid) {
    const auto token = parse_bearer(req.header("authorization"));
    if (!token || token->session_id != *sid)
      return respond(fd, 401, "session token required\n", keep_alive);

    if (tail.empty()) {
      std::shared_ptr<Session> s;
      switch (manager_.access(*token, /*count_command=*/false, s)) {
        case SessionManager::Access::kNotFound:
          return respond(fd, 404, "no such session\n", keep_alive);
        case SessionManager::Access::kBadToken:
          return respond(fd, 401, "bad session token\n", keep_alive);
        default:
          break;
      }
      if (req.method == "DELETE") {
        manager_.close(*sid);
        return respond(fd, 204, "", keep_alive);
      }
      if (req.method != "GET")
        return respond(fd, 405, "GET or DELETE\n", keep_alive);
      std::uint64_t cmds = 0;
      std::uint64_t limited = 0;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        cmds = s->commands;
        limited = s->rate_limited;
      }
      return respond(
          fd, 200,
          util::format("{\"session\":%u,\"commands\":%llu,"
                       "\"rate_limited\":%llu}\n",
                       *sid, static_cast<unsigned long long>(cmds),
                       static_cast<unsigned long long>(limited)),
          keep_alive);
    }
    if (tail == "/command") {
      if (req.method != "POST")
        return respond(fd, 405, "POST only\n", keep_alive);
      return handle_command(fd, *sid, req, keep_alive);
    }
  }

  return respond(fd, 404, "not found\n", keep_alive);
}

bool ControlPlaneServer::handle_command(int fd, std::uint32_t sid,
                                        const HttpRequest& req,
                                        bool keep_alive) {
  const auto token = parse_bearer(req.header("authorization"));
  std::shared_ptr<Session> s;
  switch (manager_.access(*token, /*count_command=*/true, s)) {
    case SessionManager::Access::kNotFound:
      return respond(fd, 404, "no such session\n", keep_alive);
    case SessionManager::Access::kBadToken:
      return respond(fd, 401, "bad session token\n", keep_alive);
    case SessionManager::Access::kRateLimited:
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      return respond(fd, 429, "rate limit exceeded\n", keep_alive,
                     {"Retry-After: 1"});
    case SessionManager::Access::kOk:
      break;
  }

  // Strip one trailing newline: `curl -d 'ping ...'` convenience.
  std::string line = req.body;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();

  commands_.fetch_add(1, std::memory_order_relaxed);
  // Execute under the core lock (results buffered), then stream after
  // release — the locking discipline's no-I/O-under-lock rule.
  const ExecResult result = core_.execute(sid, line);

  if (!send_all(fd, sse_response_head(keep_alive))) return false;
  for (const auto& frame : result.frames) {
    if (!send_all(fd, chunk(frame))) return false;
  }
  if (!send_all(fd, chunk_last())) return false;
  return keep_alive;
}

}  // namespace liteview::api
