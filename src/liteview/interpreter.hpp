// The LiteView command interpreter — the workstation side of the toolkit.
//
// "The command interpreter translates each user command into a sequence
// of radio messages, keeps track of the context of user management
// operations, such as the current directory that users are located at,
// and communicates with the runtime controller following a reliable
// one-hop communication protocol." (paper Sec. IV-B)
//
// The Workstation owns a base-station node (radio attached to the
// laptop). `cd` both changes the shell context and *walks the operator
// over to that node* (management is on-site; the paper's user plugs in
// next to the mote), so the reliable protocol always runs over one hop.
//
// All commands are synchronous: they drive the shared simulator until the
// response window closes. The fixed 500 ms response budget of the paper's
// Sec. V-A is implemented here verbatim: single-response commands always
// wait the full window, absorbing the nodes' random response backoff.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kernel/node.hpp"
#include "liteview/messages.hpp"
#include "liteview/reliable.hpp"
#include "trace/checkpoint.hpp"
#include "util/strings.hpp"

namespace liteview::trace {
class FlightRecorder;
}

namespace liteview::lv {

struct WorkstationConfig {
  net::Addr address = 0xfe01;
  std::string name = "ws0";
  phy::Position position{0.0, 0.0};
  mac::MacConfig mac;
  ReliableConfig reliable;
  /// The paper's fixed command response budget.
  sim::SimTime response_budget = sim::SimTime::ms(500);
  /// Extra deadline slack for ping (per round) and traceroute (total).
  sim::SimTime ping_round_budget = sim::SimTime::ms(700);
  sim::SimTime traceroute_budget = sim::SimTime::sec(6);
};

/// One timed traceroute hop report as received at the workstation.
struct TimedReport {
  sim::SimTime arrival;  ///< relative to command issue time
  TracerouteReportMsg report;
};

struct TraceRun {
  std::vector<TimedReport> reports;
  std::optional<TracerouteDoneMsg> done;
  sim::SimTime elapsed;
};

struct PingRun {
  std::optional<PingResultMsg> result;
  sim::SimTime elapsed;
};

class Workstation {
 public:
  Workstation(sim::Simulator& sim, phy::Medium& medium,
              const kernel::AddressBook& book,
              const WorkstationConfig& cfg = {});

  [[nodiscard]] kernel::Node& node() noexcept { return node_; }
  [[nodiscard]] ReliableEndpoint& endpoint() noexcept { return endpoint_; }
  [[nodiscard]] const kernel::AddressBook& book() const noexcept {
    return book_;
  }

  /// Walk over to a node: relocate the base-station radio next to it.
  void move_near(phy::Position node_pos);

  // ---- synchronous management operations -----------------------------
  [[nodiscard]] std::optional<RadioConfig> radio_get(net::Addr node);
  [[nodiscard]] std::optional<Status> radio_set_power(net::Addr node,
                                                      std::uint8_t level);
  [[nodiscard]] std::optional<Status> radio_set_channel(net::Addr node,
                                                        std::uint8_t channel);
  [[nodiscard]] std::optional<NbrTableMsg> nbr_list(net::Addr node,
                                                    bool with_link_info);
  [[nodiscard]] std::optional<Status> blacklist(net::Addr node,
                                                net::Addr target, bool add);
  [[nodiscard]] std::optional<Status> nbr_update(net::Addr node,
                                                 std::uint32_t period_ms);
  [[nodiscard]] std::optional<ProcessListMsg> ps(net::Addr node);
  [[nodiscard]] std::optional<LogDataMsg> fetch_log(net::Addr node);
  [[nodiscard]] std::optional<EnergyMsg> energy(net::Addr node);
  [[nodiscard]] std::optional<NetstatMsg> netstat(net::Addr node);
  /// Channel survey; blocks for ~16 × dwell + the response budget.
  [[nodiscard]] std::optional<ScanDataMsg> scan(net::Addr node,
                                                std::uint16_t dwell_ms);

  /// Execute `ping <params>` on `node`; params is the raw parameter
  /// string placed into the node's kernel parameter buffer.
  [[nodiscard]] PingRun ping(net::Addr node, const std::string& params,
                             int rounds_hint = 1);

  [[nodiscard]] TraceRun traceroute(net::Addr node, const std::string& params,
                                    int rounds_hint = 1);

  [[nodiscard]] const WorkstationConfig& config() const noexcept {
    return cfg_;
  }

  /// Observer for every decoded management response as it reaches the
  /// workstation (per-hop traceroute reports, ping results, neighbor
  /// tables, ...). `body` is the message's lv:: codec encoding exactly
  /// as received. The control plane taps this to stream per-hop results
  /// while a command is still running; null disables (the default).
  using MgmtObserver = std::function<void(
      MsgType type, const std::vector<std::uint8_t>& body,
      sim::SimTime arrival)>;
  void set_mgmt_observer(MgmtObserver obs) { observer_ = std::move(obs); }

 private:
  /// Send a request and wait exactly the response budget; returns the
  /// first matching response body.
  std::optional<std::vector<std::uint8_t>> request(
      net::Addr node, MsgType req, std::vector<std::uint8_t> body,
      MsgType expected, sim::SimTime budget);

  sim::Simulator& sim_;
  const kernel::AddressBook& book_;
  WorkstationConfig cfg_;
  kernel::Node node_;
  ReliableEndpoint endpoint_;

  // response collection for the current synchronous command
  struct Collected {
    MsgType type;
    std::vector<std::uint8_t> body;
    sim::SimTime arrival;
  };
  std::vector<Collected> inbox_;
  MgmtObserver observer_;
};

/// Shell-style front end producing the paper's transcript format.
class CommandInterpreter {
 public:
  /// `locator` maps an address to its deployment position, used by `cd`
  /// to walk the workstation next to the target node.
  using Locator =
      std::function<std::optional<phy::Position>(net::Addr)>;

  CommandInterpreter(Workstation& ws, Locator locator);

  /// Execute one command line; returns the printed transcript.
  std::string execute(const std::string& line);

  [[nodiscard]] std::string pwd() const;
  [[nodiscard]] std::optional<net::Addr> current() const { return current_; }
  bool cd(const std::string& target);

  /// Wire the testbed-side diagnostic taps: the deployment's flight
  /// recorder (behind the `trace` command) and a checkpoint factory
  /// (behind `snapshot`). Either may be null/empty; the commands then
  /// report that the facility is unavailable.
  void set_diagnostics(
      trace::FlightRecorder* recorder,
      std::function<trace::Checkpoint(std::string)> checkpointer);

  /// Extension command: `fn` receives the parsed command line and returns
  /// the transcript. Registered names are workstation-local (dispatched
  /// before the logged-in check) and shadow neither built-ins nor each
  /// other — re-registering a name replaces the handler. Layers above the
  /// liteview library (chaos, testbed tooling) hook their shell verbs in
  /// here without this library linking them.
  using CommandFn = std::function<std::string(const util::CommandLine&)>;
  void register_command(std::string name, CommandFn fn);

 private:
  std::string cmd_ls() const;
  std::string cmd_ping(const util::CommandLine& cl);
  std::string cmd_traceroute(const util::CommandLine& cl);
  std::string cmd_neighborsetup();
  std::string cmd_nbr_list(const util::CommandLine& cl);
  std::string cmd_blacklist(const util::CommandLine& cl);
  std::string cmd_update(const util::CommandLine& cl);
  std::string cmd_power(const util::CommandLine& cl);
  std::string cmd_channel(const util::CommandLine& cl);
  std::string cmd_ps();
  std::string cmd_log();
  std::string cmd_energy();
  std::string cmd_netstat();
  std::string cmd_scan(const util::CommandLine& cl);
  std::string cmd_trace(const util::CommandLine& cl);
  std::string cmd_snapshot(const util::CommandLine& cl);
  std::string cmd_help() const;
  [[nodiscard]] std::string name_of(net::Addr a) const;

  Workstation& ws_;
  Locator locator_;
  std::optional<net::Addr> current_;
  bool neighbor_mode_ = false;
  trace::FlightRecorder* recorder_ = nullptr;
  std::function<trace::Checkpoint(std::string)> checkpointer_;
  std::vector<std::uint8_t> saved_trace_;  ///< `trace save` baseline
  std::map<std::string, CommandFn> extensions_;
};

}  // namespace liteview::lv
