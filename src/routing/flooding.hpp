// Duplicate-suppressed flooding.
//
// The simplest protocol that can carry LiteView traffic: every data
// packet is rebroadcast once per node (after a random jitter that
// de-synchronizes the rebroadcast storm), with a small (origin, id)
// cache for duplicate suppression — sized like something a 4 KB-RAM mote
// could afford. Flooding has no unicast next-hop notion, so traceroute
// reports "no route" over it while multi-hop ping works; this contrast
// is itself an experiment (ablation A3).
#pragma once

#include <array>
#include <cstdint>

#include "routing/protocol.hpp"
#include "util/rng.hpp"

namespace liteview::routing {

class Flooding final : public RoutingProtocol {
 public:
  explicit Flooding(kernel::Node& node, net::Port port = net::kPortFlooding)
      : RoutingProtocol(node, port, "flood", kernel::Footprint{1866, 198}),
        jitter_rng_(node.simulator().rng_root().stream("flood.jitter",
                                                       node.address())) {}

  [[nodiscard]] std::optional<net::Addr> next_hop(net::Addr) override {
    return std::nullopt;  // flooding has no unicast route
  }

  [[nodiscard]] std::string protocol_name() const override {
    return "flooding";
  }

 protected:
  bool send_first_hop(const net::NetPacket& pkt) override;
  void forward(net::NetPacket pkt, const net::LinkContext& ctx) override;
  bool accept_packet(const net::NetPacket& pkt,
                     const net::LinkContext& ctx) override;

 private:
  [[nodiscard]] bool seen_before(net::Addr origin, std::uint16_t id);

  struct CacheEntry {
    net::Addr origin = net::kBroadcast;
    std::uint16_t id = 0;
  };
  // Ring cache of recently relayed packets (mote-sized: 32 entries).
  std::array<CacheEntry, 32> cache_{};
  std::size_t cache_next_ = 0;
  util::RngStream jitter_rng_;
};

}  // namespace liteview::routing
