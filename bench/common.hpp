// Shared bench harness: table printing and thread-parallel Monte-Carlo
// replication over independent Testbed instances (shared-nothing).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/stats.hpp"

namespace liteview::bench {

inline void header(const std::string& title) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================\n");
}

inline void section(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

/// Run `fn(seed)` for `replications` seeds across hardware threads, each
/// replication building its own simulator (no shared state). Results are
/// returned in seed order regardless of completion order.
template <typename Result>
std::vector<Result> replicate(int replications, std::uint64_t base_seed,
                              const std::function<Result(std::uint64_t)>& fn) {
  std::vector<Result> results(static_cast<std::size_t>(replications));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::jthread> workers;
  std::atomic<int> next{0};
  for (unsigned t = 0; t < hw; ++t) {
    workers.emplace_back([&] {
      for (int i = next.fetch_add(1); i < replications;
           i = next.fetch_add(1)) {
        results[static_cast<std::size_t>(i)] =
            fn(base_seed + static_cast<std::uint64_t>(i) * 101);
      }
    });
  }
  workers.clear();  // join
  return results;
}

/// "paper X | measured Y" summary row used by EXPERIMENTS.md.
inline void compare_row(const char* metric, const char* paper,
                        const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", metric, paper,
              measured.c_str());
}

}  // namespace liteview::bench
