#include "sim/simulator.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace liteview::sim {

std::string SimTime::to_string() const {
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000)
    return util::format("%.3f s", seconds());
  if (ns_ >= 1'000'000 || ns_ <= -1'000'000)
    return util::format("%.1f ms", milliseconds());
  if (ns_ >= 1'000 || ns_ <= -1'000)
    return util::format("%.1f us", microseconds());
  return util::format("%lld ns", static_cast<long long>(ns_));
}

EventHandle Simulator::schedule_at(SimTime when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(cb), flag});
  return EventHandle(std::move(flag));
}

EventHandle Simulator::schedule_every(SimTime period, Callback cb) {
  auto flag = std::make_shared<bool>(false);
  // The repeating wrapper reschedules itself while the shared flag is
  // clear; cancelling the returned handle stops the chain.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, cb = std::move(cb), flag, tick]() {
    if (*flag) return;
    cb();
    if (*flag) return;
    auto inner = std::make_shared<bool>(false);
    queue_.push(Event{now_ + period, next_seq_++, *tick, flag});
  };
  queue_.push(Event{now_ + period, next_seq_++, *tick, flag});
  return EventHandle(std::move(flag));
}

bool Simulator::step(SimTime limit) {
  while (!queue_.empty()) {
    if (queue_.top().when > limit) return false;
    Event ev = queue_.top();
    queue_.pop();
    if (ev.cancelled && *ev.cancelled) continue;  // lazily dropped
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime limit) {
  while (step(limit)) {
  }
  // If we stopped because the queue head is beyond the limit (or empty),
  // the clock still advances to the limit so run_for() composes.
  if (limit != SimTime::max() && limit > now_) now_ = limit;
}

}  // namespace liteview::sim
