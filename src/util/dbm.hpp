// Decibel arithmetic helpers shared by the PHY model and benches.
#pragma once

#include <cmath>

namespace liteview::util {

/// dBm → milliwatts.
[[nodiscard]] inline double dbm_to_mw(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0);
}

/// milliwatts → dBm. Requires mw > 0.
[[nodiscard]] inline double mw_to_dbm(double mw) noexcept {
  return 10.0 * std::log10(mw);
}

/// Sum two powers expressed in dBm (used when accumulating interference).
[[nodiscard]] double dbm_add(double a_dbm, double b_dbm) noexcept;

/// Linear interpolation.
[[nodiscard]] inline double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// Clamp helper kept here for symmetric use with lerp in PHY tables.
[[nodiscard]] inline double clampd(double v, double lo, double hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace liteview::util
