// Diagnosis-as-a-service control plane daemon: hosts one shared
// simulated deployment and serves concurrent diagnosis sessions over
// HTTP + SSE (see src/api/server.hpp for the routes).
//
//   lv_server [--nodes N] [--grid ROWSxCOLS] [--seed S] [--port P]
//             [--workers W] [--join-token T] [--rate-limit CPS]
//             [--idle-ttl SECONDS] [--flight-recorder]
//
// Quickstart:
//   lv_server --nodes 20 --port 8080 &
//   curl -s -X POST http://127.0.0.1:8080/v1/sessions
//     -> {"session":1,"token":"lvs-..."}
//   curl -s -N -H "Authorization: Bearer lvs-..."
//        -d 'traceroute node20' http://127.0.0.1:8080/v1/sessions/1/command
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "api/server.hpp"
#include "testbed/testbed.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Args {
  int nodes = 20;
  int grid_rows = 0;
  int grid_cols = 0;
  std::uint64_t seed = 1;
  std::uint16_t port = 8080;
  int workers = 4;
  std::string join_token;
  double rate_limit = 50.0;
  int idle_ttl_s = 60;
  bool flight_recorder = false;
  int shards = 0;  // 0 = serial event loop (no shard engine)
};

void usage() {
  std::fprintf(
      stderr,
      "usage: lv_server [--nodes N] [--grid ROWSxCOLS] [--seed S]\n"
      "                 [--port P] [--workers W] [--join-token T]\n"
      "                 [--rate-limit CPS] [--idle-ttl SECONDS]\n"
      "                 [--flight-recorder] [--shards K]\n");
}

// Validates --shards the same way bench/scale_sweep does: an integer in
// [1, 4 * hardware threads]. Returns false (after printing a specific
// error) on anything else so a typo fails loudly instead of silently
// running serial.
bool parse_shards(const char* v, int* out) {
  char* end = nullptr;
  const long k = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || k < 1) {
    std::fprintf(stderr,
                 "lv_server: --shards expects an integer >= 1 (got '%s')\n",
                 v);
    return false;
  }
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  const long max_shards = static_cast<long>(hc) * 4;
  if (k > max_shards) {
    std::fprintf(stderr,
                 "lv_server: --shards %ld exceeds 4x the host's %u hardware "
                 "threads (max %ld)\n",
                 k, hc, max_shards);
    return false;
  }
  *out = static_cast<int>(k);
  return true;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--flight-recorder") {
      a.flight_recorder = true;
    } else if (flag == "--nodes") {
      const char* v = value();
      if (!v) return false;
      a.nodes = std::atoi(v);
    } else if (flag == "--grid") {
      const char* v = value();
      if (!v || std::sscanf(v, "%dx%d", &a.grid_rows, &a.grid_cols) != 2)
        return false;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!v) return false;
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--port") {
      const char* v = value();
      if (!v) return false;
      a.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (flag == "--workers") {
      const char* v = value();
      if (!v) return false;
      a.workers = std::atoi(v);
    } else if (flag == "--join-token") {
      const char* v = value();
      if (!v) return false;
      a.join_token = v;
    } else if (flag == "--rate-limit") {
      const char* v = value();
      if (!v) return false;
      a.rate_limit = std::atof(v);
    } else if (flag == "--idle-ttl") {
      const char* v = value();
      if (!v) return false;
      a.idle_ttl_s = std::atoi(v);
    } else if (flag == "--shards") {
      const char* v = value();
      if (!v || !parse_shards(v, &a.shards)) return false;
    } else {
      usage();
      return false;
    }
  }
  return a.nodes > 0 && a.workers > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace liteview;

  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  api::SimCore core([&args] {
    auto cfg = testbed::Testbed::paper_config(args.seed);
    cfg.flight_recorder = args.flight_recorder;
    cfg.shards = args.shards;
    std::unique_ptr<testbed::Testbed> tb;
    if (args.grid_rows > 0 && args.grid_cols > 0) {
      tb = testbed::Testbed::surveyed_grid(args.grid_rows, args.grid_cols,
                                           cfg);
    } else {
      tb = testbed::Testbed::surveyed_line(args.nodes, cfg);
    }
    tb->warm_up();
    return tb;
  });

  api::ServerConfig cfg;
  cfg.port = args.port;
  cfg.worker_threads = args.workers;
  cfg.join_token = args.join_token;
  cfg.sessions.rate.commands_per_sec = args.rate_limit;
  cfg.sessions.idle_ttl = std::chrono::seconds(args.idle_ttl_s);

  api::ControlPlaneServer server(core, cfg);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "lv_server: %s\n", err.c_str());
    return 1;
  }
  std::printf(
      "lv_server: %zu nodes, %d workers, %d shards, listening on %s:%u\n",
      core.node_count(), args.workers, args.shards, cfg.bind_address.c_str(),
      server.port());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    struct timespec ts {0, 100'000'000};
    nanosleep(&ts, nullptr);
  }

  server.stop();
  const auto stats = server.stats();
  std::printf(
      "lv_server: shutting down — %llu connections, %llu requests, "
      "%llu commands (%llu rate-limited), %llu parse errors\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.commands),
      static_cast<unsigned long long>(stats.rate_limited),
      static_cast<unsigned long long>(stats.parse_errors));
  return 0;
}
