// Flight-recorder replay — time-travel debugging for a sensor network.
//
// A 7-node line deployment is about to suffer a node crash. The operator
// (or a CI gate) wants to study the failure window without re-running the
// whole experiment, and to prove a "fixed" build behaves identically up
// to the intended change. The workflow:
//   1. run with the flight recorder on, checkpoint just before the fault,
//   2. live through the crash window while every layer records,
//   3. restore the checkpoint — rebuild + deterministic fast-forward,
//      byte-verified section by section — and replay the same window,
//   4. diff the two captures: byte-identical, record for record,
//   5. replay once more with a *different* fault injected and let the
//      trace diff name the first record where history changed.
#include <cstdio>
#include <memory>
#include <string>

#include "fault/scenario.hpp"
#include "testbed/testbed.hpp"
#include "trace/checkpoint.hpp"
#include "trace/diff.hpp"
#include "trace/flight_recorder.hpp"

using namespace liteview;

namespace {

void shell_cmd(lv::CommandInterpreter& shell, const std::string& line) {
  std::printf("$ %s\n%s\n", line.c_str(), shell.execute(line).c_str());
}

/// The reproducible world: same topology, same seed, same scripted crash.
/// Restore replays this from t=0, so everything the run depends on must
/// be captured here.
std::unique_ptr<testbed::Testbed> build_world() {
  testbed::TestbedConfig cfg = testbed::Testbed::paper_config(77);
  cfg.flight_recorder = true;
  auto tb = testbed::Testbed::surveyed_line(7, cfg);
  tb->sim().install_log_time_source();  // log lines carry t=<sim time>
  const auto scenario = fault::parse_scenario("crash 4 at=8s for=2s");
  tb->fault().load(*scenario);
  return tb;
}

void print_first_lines(const std::string& text, int n) {
  std::size_t pos = 0;
  for (int i = 0; i < n && pos < text.size(); ++i) {
    const std::size_t nl = text.find('\n', pos);
    std::printf("  %s\n", text.substr(pos, nl - pos).c_str());
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  std::printf("  ...\n");
}

}  // namespace

int main() {
  std::printf("LiteView flight-recorder replay — checkpoint, crash, rewind\n");
  std::printf("===========================================================\n\n");

  std::printf("step 1 — run to t=6s and checkpoint (the crash hits at 8s):\n\n");
  auto live = build_world();
  live->sim().run_for(sim::SimTime::sec(6));
  shell_cmd(live->shell(), "trace");
  shell_cmd(live->shell(), "snapshot before crash window");
  const trace::Checkpoint cp = live->checkpoint("before crash window");

  std::printf("step 2 — live through the crash window [6s, 12s), recording:\n\n");
  live->recorder()->reset();  // capture the window, not the warm-up
  live->sim().run_for(sim::SimTime::sec(6));
  const auto live_capture = live->recorder()->serialize();
  std::printf("  crashes seen: %llu, capture: %zu bytes\n",
              static_cast<unsigned long long>(live->fault().totals().crashes),
              live_capture.size());
  if (const auto tf = trace::FlightRecorder::parse(live_capture)) {
    std::printf("  first records of the window:\n");
    print_first_lines(trace::FlightRecorder::dump(*tf), 6);
  }

  std::printf("\nstep 3 — restore the checkpoint (rebuild + fast-forward,\n");
  std::printf("every section byte-verified) and replay the same window:\n\n");
  std::string err;
  auto replay = testbed::Testbed::restore(cp, build_world, &err);
  if (replay == nullptr) {
    std::printf("  restore FAILED: %s\n", err.c_str());
    return 1;
  }
  std::printf("  restored to t=%.3fs (%s)\n",
              static_cast<double>(cp.t_ns) / 1e9, cp.meta.c_str());
  replay->recorder()->reset();
  replay->sim().run_for(sim::SimTime::sec(6));
  const auto replay_capture = replay->recorder()->serialize();

  std::printf("\nstep 4 — diff live window vs. replayed window:\n\n");
  const auto same = trace::diff_bytes(live_capture, replay_capture);
  std::printf("  %s\n", same.summary.c_str());
  if (!same.identical) return 1;

  std::printf("\nstep 5 — what if the window had gone differently? Replay\n");
  std::printf("again with a jam injected mid-window and diff against the\n");
  std::printf("recorded history:\n\n");
  auto altered = testbed::Testbed::restore(cp, build_world, &err);
  if (altered == nullptr) {
    std::printf("  restore FAILED: %s\n", err.c_str());
    return 1;
  }
  const auto jam = fault::parse_scenario("jam ch=26 at=9s for=300ms");
  altered->fault().load(*jam);
  altered->recorder()->reset();
  altered->sim().run_for(sim::SimTime::sec(6));
  const auto d = trace::diff_bytes(live_capture,
                                   altered->recorder()->serialize());
  std::printf("  %s\n", d.summary.c_str());

  std::printf(
      "\nThe diff names the exact record where the alternate history\n"
      "forked — the same report a red CI determinism gate produces via\n"
      "tools/trace_diff on the dumped .lvtr pair.\n");
  return d.identical ? 1 : 0;
}
