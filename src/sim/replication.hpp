// Shared-nothing parallel Monte-Carlo replication.
//
// The Simulator's contract is "parallelism across independent Simulator
// instances, never inside one" — this is that runner. Each replication
// gets its own derived seed and builds everything it needs (Simulator,
// Medium, Testbed, ...) inside its worker; nothing is shared between
// replications, so no locks are needed and no false sharing of simulation
// state can occur. Results land in a vector indexed by replication, which
// makes the output independent of thread count and scheduling: the same
// (base_seed, replications) pair yields the same vector whether it ran on
// 1 thread or 16. A replication that throws is reported failed in its own
// slot without poisoning the others.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace liteview::sim {

struct ReplicationConfig {
  std::size_t replications = 1;
  /// Worker threads; 0 = one per hardware thread. Capped at the number of
  /// replications.
  unsigned threads = 0;
  /// Root of the per-replication seed derivation.
  std::uint64_t base_seed = 1;
};

/// Seed for replication `index` under `base_seed`. splitmix64 is a
/// bijection, so for a fixed base the map index→seed is injective: derived
/// seeds cannot collide, unlike the base+i·k idiom where two sweeps with
/// overlapping bases silently share replications.
[[nodiscard]] std::uint64_t derive_replication_seed(
    std::uint64_t base_seed, std::size_t index) noexcept;

/// Resolve a requested thread count (0 → hardware concurrency, min 1).
[[nodiscard]] unsigned effective_threads(unsigned requested) noexcept;

/// Name the calling thread for TSan/perf/top reports (pthread_setname_np
/// where available, truncated to the platform's 15-char limit; a no-op
/// elsewhere). Used by the replication workers ("lvrep/N") and the shard
/// engine's workers ("lvshard/N").
void name_current_thread(const char* name) noexcept;

/// Outcome of one replication. `value` is engaged iff `ok`.
template <typename R>
struct Replication {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;  ///< exception text when the body threw
  std::optional<R> value;
};

/// Run `fn(index, seed)` for every replication across `cfg.threads`
/// workers. `fn` must be callable concurrently from multiple threads and
/// must not touch state shared across replications — build the whole
/// simulation world inside it.
template <typename Fn>
auto run_replications(const ReplicationConfig& cfg, Fn&& fn)
    -> std::vector<
        Replication<std::invoke_result_t<Fn&, std::size_t, std::uint64_t>>> {
  using R = std::invoke_result_t<Fn&, std::size_t, std::uint64_t>;
  std::vector<Replication<R>> out(cfg.replications);
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < cfg.replications;
         i = next.fetch_add(1)) {
      Replication<R>& slot = out[i];
      slot.index = i;
      slot.seed = derive_replication_seed(cfg.base_seed, i);
      try {
        slot.value.emplace(fn(i, slot.seed));
        slot.ok = true;
      } catch (const std::exception& e) {
        slot.error = e.what();
      } catch (...) {
        slot.error = "non-std exception";
      }
    }
  };

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(effective_threads(cfg.threads),
                            std::max<std::size_t>(cfg.replications, 1)));
  if (workers <= 1) {
    worker();
    return out;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    pool.emplace_back([&worker, t] {
      char name[16];
      std::snprintf(name, sizeof(name), "lvrep/%u", t);
      name_current_thread(name);
      worker();
    });
  }
  for (auto& th : pool) th.join();
  return out;
}

}  // namespace liteview::sim
