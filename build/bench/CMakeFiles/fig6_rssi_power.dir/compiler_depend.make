# Empty compiler generated dependencies file for fig6_rssi_power.
# This may be replaced when dependencies are built.
