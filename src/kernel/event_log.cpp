#include "kernel/event_log.hpp"

namespace liteview::kernel {

std::string_view to_string(EventCode code) noexcept {
  switch (code) {
    case EventCode::kBoot: return "boot";
    case EventCode::kPowerChanged: return "power-changed";
    case EventCode::kChannelChanged: return "channel-changed";
    case EventCode::kNeighborAdded: return "neighbor-added";
    case EventCode::kNeighborExpired: return "neighbor-expired";
    case EventCode::kBlacklistAdded: return "blacklist-added";
    case EventCode::kBlacklistRemoved: return "blacklist-removed";
    case EventCode::kBeaconPeriodChanged: return "beacon-period-changed";
    case EventCode::kRouteDropNoRoute: return "route-drop-no-route";
    case EventCode::kRouteDropTtl: return "route-drop-ttl";
    case EventCode::kCommandExecuted: return "command-executed";
    case EventCode::kQueueOverflow: return "queue-overflow";
    case EventCode::kCrashed: return "crashed";
    case EventCode::kRebooted: return "rebooted";
    case EventCode::kPeerDead: return "peer-dead";
  }
  return "unknown";
}

}  // namespace liteview::kernel
