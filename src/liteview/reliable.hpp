// The reliable one-hop message exchange protocol between the command
// interpreter (workstation) and runtime controllers (nodes).
//
// From the paper (Sec. IV-B): "For commands interpreted into one single
// packet, one acknowledgement packet, combined with a timeout mechanism,
// is sufficient. For commands translated into a sequence of packets, the
// protocol operates in batches, with one acknowledgement packet for each
// batch. The number of packets in each batch is dynamically adjusted
// based on link quality: a smaller batch size is preferred when packets
// are more likely to get lost. The lost packets are detected at the node
// side by detecting missing sequence numbers. Finally, if the management
// workstation is operating on a group of nodes, these nodes wait for
// random backoff delays before sending responses."
//
// Fragment layout on net::kPortMgmt:
//   DATA: [0]=0 [1..2]=msg_id [3]=frag_index [4]=frag_count [5]=flags
//         [6..]=chunk                       (flags bit0: ack requested,
//                                            bit1: unacknowledged bcast)
//   ACK:  [0]=1 [1..2]=msg_id [3]=n_missing [4..]=missing indices
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "kernel/node.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace liteview::lv {

struct ReliableConfig {
  /// Message bytes per fragment (fits the 64-byte payload budget with
  /// the 7-byte fragment header).
  std::size_t frag_payload = 48;
  std::size_t initial_batch = 4;
  std::size_t min_batch = 1;
  std::size_t max_batch = 8;
  /// When false, the batch size stays at initial_batch (ablation A1).
  bool adaptive_batch = true;
  sim::SimTime ack_timeout = sim::SimTime::ms(120);
  int max_retries = 8;
  /// Spacing between fragments within one batch (MAC queue pacing).
  sim::SimTime frag_spacing = sim::SimTime::ms(4);
  /// Retry backoff: the ack wait grows by this factor per consecutive
  /// timeout (fixed-timeout retransmission collapses under the burst
  /// losses real WSN links exhibit — each retry lands in the same burst).
  /// 1.0 restores the old fixed-timeout behavior.
  double backoff_factor = 2.0;
  /// Cap on the grown ack wait (bounds worst-case latency detection).
  sim::SimTime max_backoff = sim::SimTime::sec(2);
  /// Multiplicative jitter on every retry window: the wait is scaled by
  /// uniform(1, 1 + backoff_jitter) so synchronized endpoints don't
  /// retry in lockstep. 0 disables.
  double backoff_jitter = 0.25;
  /// Dead-peer verdict: after a message exhausts max_retries, queued and
  /// new messages to that peer fail immediately for this long instead of
  /// each stalling the queue through a full retry ladder. Zero disables.
  sim::SimTime dead_peer_cooldown = sim::SimTime::sec(5);
  /// Incomplete reassembly buffers not refreshed within this window are
  /// evicted — without it, fragments from lossy or crashed peers leak
  /// memory forever.
  sim::SimTime incoming_ttl = sim::SimTime::sec(30);
  /// Duplicate suppression horizon: a completed msg_id only swallows
  /// retransmissions this recent. Retries die within seconds, but the
  /// 16-bit id space wraps after 65536 messages — an unbounded horizon
  /// would silently eat the first fresh message whose id collides with
  /// an ancient completion.
  sim::SimTime dedup_window = sim::SimTime::sec(60);
  /// TEST HOOK (chaos acceptance): deliberately regress the retry ladder —
  /// a message that exhausts max_retries is silently dropped instead of
  /// completing with a typed failure, so the queue head stays "in flight"
  /// forever. The chaos reliable-termination oracle must catch this; it
  /// exists so the campaign's detection power is itself under test.
  bool chaos_swallow_exhausted = false;
};

struct ReliableStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_failed = 0;
  std::uint64_t data_frags_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t timeouts = 0;
  /// Messages failed instantly because their peer was presumed dead.
  std::uint64_t dead_peer_fastfails = 0;
  /// Stale incomplete reassembly buffers dropped by the TTL sweep.
  std::uint64_t incoming_evicted = 0;
};

/// One endpoint of the reliable protocol. Both the workstation's base
/// station and every node's runtime controller own one.
class ReliableEndpoint {
 public:
  /// (source address, message bytes, arrived_via_broadcast)
  using MessageHandler = std::function<void(
      net::Addr, const std::vector<std::uint8_t>&, bool)>;
  using SendCallback = std::function<void(bool)>;

  ReliableEndpoint(kernel::Node& node, const ReliableConfig& cfg = {});
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  /// Queue a message for reliable one-hop delivery. Messages to the same
  /// endpoint are serviced in order, one in flight at a time.
  void send_message(net::Addr dst, std::vector<std::uint8_t> message,
                    SendCallback cb = {});

  /// Best-effort single-fragment broadcast (group commands). Message must
  /// fit one fragment; receivers apply response backoff at the app layer.
  bool broadcast(std::vector<std::uint8_t> message);

  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  [[nodiscard]] const ReliableStats& stats() const noexcept { return stats_; }
  /// Current adaptive batch size toward a peer (initial when unknown).
  [[nodiscard]] std::size_t batch_size(net::Addr peer) const;
  [[nodiscard]] kernel::Node& node() noexcept { return node_; }
  [[nodiscard]] const ReliableConfig& config() const noexcept { return cfg_; }

  /// True while `peer` is under a dead-peer cooldown (messages fail fast).
  [[nodiscard]] bool peer_dead(net::Addr peer) const;
  /// Incomplete reassembly buffers currently held (TTL sweep observability).
  [[nodiscard]] std::size_t pending_reassemblies() const noexcept {
    return incoming_.size();
  }
  /// True while a message occupies the head of the send queue (chaos
  /// oracles assert this clears once the network quiesces).
  [[nodiscard]] bool in_flight() const noexcept { return in_flight_; }
  /// Messages queued toward any peer, including the one in flight.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  /// Test hook: force the next outgoing msg_id toward `peer` (simulates
  /// the id space wrapping without sending 65536 messages).
  void set_next_msg_id(net::Addr peer, std::uint16_t id) {
    next_id_[peer] = id;
  }

 private:
  struct Outgoing {
    net::Addr dst = 0;
    std::uint16_t msg_id = 0;
    std::vector<std::vector<std::uint8_t>> frags;
    std::vector<bool> acked;
    std::vector<bool> sent;  ///< transmitted at least once
    int retries = 0;
    SendCallback cb;
  };

  struct Incoming {
    std::vector<std::optional<std::vector<std::uint8_t>>> frags;
    std::size_t received = 0;
    sim::SimTime last_update;  ///< refreshed per fragment; drives the TTL
  };

  void on_packet(const net::NetPacket& pkt, const net::LinkContext& ctx);
  void handle_data(net::Addr from, util::ByteReader& r, bool was_broadcast);
  void handle_ack(net::Addr from, util::ByteReader& r);
  void start_next();
  void send_round();
  void on_ack_timeout(std::uint16_t msg_id);
  void finish_current(bool ok);
  void send_frag(const Outgoing& msg, std::size_t index, bool ack_request,
                 sim::SimTime delay);
  void send_ack(net::Addr to, std::uint16_t msg_id,
                const std::vector<std::uint8_t>& missing);
  [[nodiscard]] std::vector<std::size_t> unacked(const Outgoing& m) const;
  void declare_peer_dead(net::Addr peer);
  void fail_dead_peer_head();
  [[nodiscard]] sim::SimTime retry_window(const Outgoing& m,
                                          std::size_t batch);
  void sweep_incoming();
  void arm_sweep();

  kernel::Node& node_;
  ReliableConfig cfg_;
  MessageHandler handler_;
  util::RngStream rng_;

  struct Completed {
    std::uint16_t id = 0;
    sim::SimTime when;  ///< bounds the dedup horizon across id wraparound
  };

  std::deque<Outgoing> queue_;  ///< front = in flight
  bool in_flight_ = false;
  /// Unicast ids are per-peer and sequential (dedup compares them in
  /// serial-number order, which needs small forward distances); this
  /// counter only numbers unacknowledged broadcasts.
  std::uint16_t next_msg_id_ = 1;
  std::map<net::Addr, std::uint16_t> next_id_;
  sim::EventHandle timeout_;

  std::map<net::Addr, std::size_t> peer_batch_;
  std::map<std::pair<net::Addr, std::uint16_t>, Incoming> incoming_;
  std::map<net::Addr, Completed> last_completed_;
  std::map<net::Addr, sim::SimTime> dead_until_;
  sim::EventHandle sweep_timer_;
  bool sweep_armed_ = false;

  ReliableStats stats_;
};

}  // namespace liteview::lv
