#include "chaos/shell.hpp"

#include <algorithm>

#include "chaos/campaign.hpp"
#include "chaos/generator.hpp"
#include "chaos/shrink.hpp"
#include "util/strings.hpp"

namespace liteview::chaos {
namespace {

std::string cmd_gen(const util::CommandLine& cl) {
  GeneratorConfig gen;
  const auto seed = cl.option_int_or("seed", 1);
  const auto nodes = cl.option_int_or("nodes", gen.nodes);
  const auto clauses = cl.option_int_or(
      "clauses", static_cast<std::int64_t>(gen.max_clauses));
  if (!seed || !nodes || *nodes < 2 || !clauses || *clauses < 1) {
    return "usage: chaos gen [seed=N nodes=K clauses=M]\n";
  }
  gen.nodes = static_cast<int>(*nodes);
  gen.max_clauses = static_cast<std::size_t>(*clauses);
  return fault::serialize_scenario(
      generate_scenario(static_cast<std::uint64_t>(*seed), gen));
}

std::string cmd_run(const util::CommandLine& cl) {
  CampaignConfig cfg;
  const auto cells = cl.option_int_or("cells", 20);
  const auto seed = cl.option_int_or("seed", 1);
  const auto nodes = cl.option_int_or("nodes", cfg.cell.nodes);
  if (!cells || *cells < 1 || !seed || !nodes || *nodes < 2) {
    return "usage: chaos run [cells=N seed=S nodes=K]\n";
  }
  cfg.cells = static_cast<std::size_t>(*cells);
  cfg.base_seed = static_cast<std::uint64_t>(*seed);
  cfg.cell.nodes = static_cast<int>(*nodes);
  cfg.generator.nodes = cfg.cell.nodes;

  const CampaignResult r = run_campaign(cfg);
  std::string out = util::format(
      "campaign: %zu cells, %zu failed, %.1f cells/min\n", r.cells.size(),
      r.failed_cells(), r.cells_per_minute());
  for (const auto& c : r.cells) {
    if (c.ok()) continue;
    out += util::format("  cell %zu seed=%llu: ", c.index,
                        static_cast<unsigned long long>(c.seed));
    if (!c.error.empty()) {
      out += "exception: " + c.error + "\n";
    } else {
      out += c.failures.front().to_string() + "\n";
    }
  }
  return out;
}

std::string cmd_shrink(const util::CommandLine& cl) {
  CellOptions opt;
  const auto seed_opt = cl.option_int_or("seed", -1);
  const auto nodes = cl.option_int_or("nodes", opt.nodes);
  if (!seed_opt || *seed_opt < 0 || !nodes || *nodes < 2) {
    return "usage: chaos shrink seed=N [nodes=K]\n";
  }
  opt.nodes = static_cast<int>(*nodes);
  GeneratorConfig gen;
  gen.nodes = opt.nodes;
  const auto s = static_cast<std::uint64_t>(*seed_opt);
  const fault::Scenario sc = generate_scenario(s, gen);

  const ShrinkResult res = shrink_scenario(s, sc, opt);
  if (!res.reproduced) {
    return util::format("chaos shrink: seed %llu does not fail (%zu-clause "
                        "scenario ran clean)\n",
                        static_cast<unsigned long long>(s),
                        res.original_clauses);
  }
  return util::format("oracle: %s\nclauses: %zu -> %zu (%zu runs)\n",
                      res.oracle.c_str(), res.original_clauses,
                      res.final_clauses, res.runs) +
         res.scenario_text;
}

}  // namespace

void install_shell_commands(testbed::Testbed& tb) {
  install_shell_commands(tb, tb.shell());
}

void install_shell_commands(testbed::Testbed& tb,
                            lv::CommandInterpreter& shell) {
  shell.register_command(
      "chaos", [&tb](const util::CommandLine& cl) -> std::string {
        const std::string sub =
            cl.positional.empty() ? "" : cl.positional[0];
        if (sub == "gen") return cmd_gen(cl);
        if (sub == "run") return cmd_run(cl);
        if (sub == "shrink") return cmd_shrink(cl);
        if (sub == "check") {
          OracleSet quiesce;
          OracleSet inlineable;
          install_testbed_oracles(tb, quiesce, inlineable);
          quiesce.run("quiesce");
          inlineable.run("quiesce");
          if (quiesce.clean() && inlineable.clean()) {
            return util::format("chaos check: %zu oracles clean\n",
                                quiesce.size() + inlineable.size());
          }
          std::string out;
          for (const auto& f : quiesce.failures()) {
            out += f.to_string() + "\n";
          }
          for (const auto& f : inlineable.failures()) {
            out += f.to_string() + "\n";
          }
          return out;
        }
        return "usage: chaos gen|run|shrink|check ...\n";
      });
}

}  // namespace liteview::chaos
