// The flight-recorder record format — one binary codec for every trace
// this codebase emits.
//
// A record is a compact varint-encoded tuple:
//
//   len:u8  kind:u8  t_ns:varint  seq:varint  args[argc(kind)]:varint...
//
// `len` is the total encoded size (including itself), so a reader — or a
// ring buffer evicting from its head — can skip a record without decoding
// it. `t_ns` is absolute simulated time and `seq` an absolute recorder-wide
// monotone sequence: both survive arbitrary ring overwrite, unlike delta
// chains. Every kind has a fixed argument count (kArgc), so the format is
// self-describing enough for a generic reader, diff tool, and fuzzer.
//
// The codec deliberately depends on nothing but <cstdint>: the sim, phy,
// mac, net, fault and routing layers all record through it, and the trace
// library must sit *below* all of them in the link graph.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

namespace liteview::trace {

/// Compile-time kill switch: building with -DLV_NO_FLIGHT_RECORDER makes
/// every recording hook (`if (trace::kEnabled && rec_) ...`) dead code the
/// optimizer deletes outright. The default build keeps the hooks as a
/// single predictable null-pointer branch.
#ifdef LV_NO_FLIGHT_RECORDER
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

enum class RecKind : std::uint8_t {
  kEventDispatch = 1,  ///< a=simulator event seq
  kPhyTx = 2,          ///< a=channel b=psdu bytes c=airtime ns d=tx seq
  kPhyRx = 3,          ///< a=from b=crc_ok c=rssi_reg+128 d=lqi
  kPhyDrop = 4,        ///< a=from b=reason (PhyDropReason)
  kMacBackoff = 5,     ///< a=attempt (nb) b=backoff exponent c=slots drawn
  kMacDrop = 6,        ///< a=reason (MacDropReason)
  kMacTx = 7,          ///< a=dst b=mac seq c=payload bytes
  kNetSend = 8,        ///< a=port b=final dst c=link next hop
  kNetRecv = 9,        ///< a=port b=origin c=link src
  kRoute = 10,         ///< a=final dst b=next hop (0 = no route) c=packet id
  kFault = 11,         ///< a=fault kind b=arg a c=arg b
  kSniffRx = 12,       ///< a=from b=channel c=psdu bytes d=crc_ok
  kCounter = 13,       ///< a=counter id b=value (run summaries, test gates)
  kUser = 14,          ///< a..d free-form
  kMaxKind = kUser,
};

/// Reasons carried by kPhyDrop.
enum class PhyDropReason : std::uint8_t {
  kBusyRx = 1,   ///< receiver was (or turned) transmitter mid-frame
  kRetune = 2,   ///< receiver changed channel mid-frame
  kFault = 3,    ///< suppressed by the fault plane / drop filter
};

/// Reasons carried by kMacDrop.
enum class MacDropReason : std::uint8_t {
  kQueueFull = 1,
  kChannelBusy = 2,
  kRadioOff = 3,
};

/// Fixed argument count per kind; index by static_cast<size_t>(kind).
inline constexpr std::array<std::uint8_t, 15> kArgc = {
    0,  // (unused)
    1,  // kEventDispatch
    4,  // kPhyTx
    4,  // kPhyRx
    2,  // kPhyDrop
    3,  // kMacBackoff
    1,  // kMacDrop
    3,  // kMacTx
    3,  // kNetSend
    3,  // kNetRecv
    3,  // kRoute
    3,  // kFault
    4,  // kSniffRx
    2,  // kCounter
    4,  // kUser
};

[[nodiscard]] constexpr bool valid_kind(std::uint8_t k) noexcept {
  return k >= 1 && k <= static_cast<std::uint8_t>(RecKind::kMaxKind);
}

/// Source identifiers: (domain << 24) | per-domain id. Domains keep the
/// simulator core, per-radio PHY, per-node MAC/NET/ROUTE, and the fault
/// plane from colliding in one 32-bit namespace.
enum class Domain : std::uint8_t {
  kSim = 0,    ///< id 0: the event loop itself
  kPhy = 1,    ///< id = RadioId
  kMac = 2,    ///< id = ShortAddr
  kNet = 3,    ///< id = node address
  kRoute = 4,  ///< id = node address
  kFault = 5,  ///< id 0: the fault plane
  kTest = 7,   ///< test/bench-owned streams (determinism blobs)
};

[[nodiscard]] constexpr std::uint32_t source_id(Domain d,
                                                std::uint32_t id) noexcept {
  return (static_cast<std::uint32_t>(d) << 24) | (id & 0xffffff);
}
[[nodiscard]] constexpr Domain source_domain(std::uint32_t source) noexcept {
  return static_cast<Domain>(source >> 24);
}
[[nodiscard]] constexpr std::uint32_t source_index(
    std::uint32_t source) noexcept {
  return source & 0xffffff;
}

/// A decoded record. `source` is filled in by readers that know which
/// ring the bytes came from; the in-ring encoding omits it.
struct Record {
  std::uint32_t source = 0;
  RecKind kind = RecKind::kUser;
  std::int64_t t_ns = 0;
  std::uint64_t seq = 0;
  std::array<std::uint64_t, 4> args{};

  [[nodiscard]] bool operator==(const Record&) const = default;
};

// ---- varint (LEB128) --------------------------------------------------

inline constexpr std::size_t kMaxVarintBytes = 10;

/// Append `v` to `out`; returns bytes written (1..10). `out` must have
/// room for kMaxVarintBytes.
inline std::size_t put_varint(std::uint8_t* out, std::uint64_t v) noexcept {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

/// Decode a varint from in[pos..); advances pos. Returns false on
/// truncation or a varint longer than 10 bytes (which no writer emits).
inline bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                       std::uint64_t& v) noexcept {
  v = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (pos >= in.size()) return false;
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) return true;
  }
  return false;
}

// ---- single-record codec ---------------------------------------------

/// Worst case: len + kind + 6 varints of 10 bytes.
inline constexpr std::size_t kMaxRecordBytes = 2 + 6 * kMaxVarintBytes;

/// Encode one record (sans source) into `out`, which must hold at least
/// kMaxRecordBytes. Returns the encoded length.
inline std::size_t encode_record(std::uint8_t* out, RecKind kind,
                                 std::int64_t t_ns, std::uint64_t seq,
                                 std::uint64_t a = 0, std::uint64_t b = 0,
                                 std::uint64_t c = 0,
                                 std::uint64_t d = 0) noexcept {
  std::size_t n = 1;  // len byte patched last
  out[n++] = static_cast<std::uint8_t>(kind);
  n += put_varint(out + n, static_cast<std::uint64_t>(t_ns));
  n += put_varint(out + n, seq);
  const std::uint8_t argc = kArgc[static_cast<std::size_t>(kind)];
  const std::uint64_t args[4] = {a, b, c, d};
  for (std::uint8_t i = 0; i < argc; ++i) n += put_varint(out + n, args[i]);
  out[0] = static_cast<std::uint8_t>(n);
  return n;
}

/// Decode one record starting at in[pos]; advances pos past it (using the
/// length prefix, so a partially-understood record still advances
/// correctly). Returns false — without advancing — on any malformation.
inline bool decode_record(std::span<const std::uint8_t> in, std::size_t& pos,
                          Record& rec) noexcept {
  if (pos >= in.size()) return false;
  const std::size_t start = pos;
  const std::size_t len = in[pos];
  if (len < 2 || start + len > in.size()) return false;
  std::size_t p = start + 1;
  const std::uint8_t kind = in[p++];
  if (!valid_kind(kind)) return false;
  std::uint64_t t = 0;
  std::uint64_t seq = 0;
  if (!get_varint(in, p, t) || !get_varint(in, p, seq)) return false;
  rec.kind = static_cast<RecKind>(kind);
  rec.t_ns = static_cast<std::int64_t>(t);
  rec.seq = seq;
  rec.args = {};
  const std::uint8_t argc = kArgc[kind];
  for (std::uint8_t i = 0; i < argc; ++i) {
    if (!get_varint(in, p, rec.args[i])) return false;
  }
  if (p != start + len) return false;  // length prefix must be exact
  pos = start + len;
  return true;
}

[[nodiscard]] std::string to_string(RecKind kind);
[[nodiscard]] std::string to_string(Domain d);
/// Human-readable one-line rendering ("t=4.021s seq=1182 phy/7 rx from=3
/// crc=1 ...") used by the diff tool and CI failure dumps.
[[nodiscard]] std::string to_string(const Record& rec);

}  // namespace liteview::trace
