file(REMOVE_RECURSE
  "CMakeFiles/abl_protocols.dir/abl_protocols.cpp.o"
  "CMakeFiles/abl_protocols.dir/abl_protocols.cpp.o.d"
  "abl_protocols"
  "abl_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
