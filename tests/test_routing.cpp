// Unit tests for routing: envelope codec, geographic forwarding,
// flooding, tree routing, and the shared padding engine.
#include <gtest/gtest.h>

#include "kernel/naming.hpp"
#include "routing/flooding.hpp"
#include "routing/geographic.hpp"
#include "routing/tree.hpp"
#include "testbed/testbed.hpp"

namespace liteview::routing {
namespace {

// ---- envelope -------------------------------------------------------------

TEST(Envelope, RoundTrip) {
  const std::vector<std::uint8_t> app = {9, 8, 7};
  const auto bytes = make_data_envelope(5, app);
  const auto env = parse_data_envelope(bytes);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->inner_port, 5);
  EXPECT_EQ(env->app, app);
}

TEST(Envelope, RejectsControlAndShort) {
  EXPECT_FALSE(parse_data_envelope(std::vector<std::uint8_t>{}).has_value());
  EXPECT_FALSE(
      parse_data_envelope(std::vector<std::uint8_t>{kMsgControl, 5, 1})
          .has_value());
  EXPECT_FALSE(
      parse_data_envelope(std::vector<std::uint8_t>{kMsgData}).has_value());
}

TEST(TreeCost, LinkCostFromLqi) {
  EXPECT_EQ(link_cost_from_lqi(110.0), 16);  // perfect link = ETX 1
  EXPECT_GT(link_cost_from_lqi(50.0), link_cost_from_lqi(80.0));
  EXPECT_GT(link_cost_from_lqi(80.0), link_cost_from_lqi(110.0));
  // Clamped outside the meaningful LQI range.
  EXPECT_EQ(link_cost_from_lqi(200.0), 16);
  EXPECT_EQ(link_cost_from_lqi(0.0), link_cost_from_lqi(50.0));
}

// ---- fixtures over a real testbed -----------------------------------------

struct RoutingFixture : ::testing::Test {
  void make_line(int n, std::uint64_t seed = 2, bool flooding = false,
                 bool tree = false) {
    testbed::TestbedConfig cfg = testbed::Testbed::paper_config(seed);
    cfg.with_flooding = flooding;
    cfg.with_tree = tree;
    cfg.install_suite = false;  // raw protocols, no LiteView daemons
    tb = testbed::Testbed::surveyed_line(n, cfg);
    tb->warm_up();
  }
  std::unique_ptr<testbed::Testbed> tb;
};

TEST_F(RoutingFixture, GeographicNextHopMakesProgress) {
  make_line(5);
  // From node 1 toward node 5, the next hop must be node 2 (unit stride
  // on the adjacency-calibrated line).
  EXPECT_EQ(tb->geographic(0)->next_hop(5), 2);
  EXPECT_EQ(tb->geographic(1)->next_hop(5), 3);
  // Direct neighbor: returns it outright.
  EXPECT_EQ(tb->geographic(2)->next_hop(4), 4);
  // Self: loopback.
  EXPECT_EQ(tb->geographic(0)->next_hop(1), 1);
}

TEST_F(RoutingFixture, GeographicNoRouteBeyondDeadEnd) {
  make_line(3);
  // Unknown destination (no beacon, no survey hint): no route.
  EXPECT_FALSE(tb->geographic(0)->next_hop(77).has_value());
}

TEST_F(RoutingFixture, GeographicRespectsBlacklist) {
  make_line(3);
  ASSERT_EQ(tb->geographic(0)->next_hop(3), 2);
  tb->node(0).neighbors().set_blacklisted(2, true);
  // Node 2 blacklisted: greedy has no usable progress from node 1.
  EXPECT_FALSE(tb->geographic(0)->next_hop(3).has_value());
  tb->node(0).neighbors().set_blacklisted(2, false);
  EXPECT_EQ(tb->geographic(0)->next_hop(3), 2);
}

TEST_F(RoutingFixture, GeographicEndToEndDelivery) {
  make_line(5);
  std::vector<std::uint8_t> got;
  net::Addr got_src = 0;
  tb->node(4).stack().subscribe(
      42, [&](const net::NetPacket& p, const net::LinkContext&) {
        got = p.payload;
        got_src = p.src;
      });
  ASSERT_TRUE(tb->geographic(0)->send(5, 42, {1, 2, 3}));
  tb->sim().run_for(sim::SimTime::ms(500));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(got_src, 1);
}

TEST_F(RoutingFixture, PaddingCollectsPerHopEntries) {
  make_line(5);
  std::vector<net::PadEntry> padding;
  tb->node(4).stack().subscribe(
      42, [&](const net::NetPacket& p, const net::LinkContext&) {
        padding = p.padding;
      });
  ASSERT_TRUE(tb->geographic(0)->send(5, 42, {0}, /*padding=*/true));
  tb->sim().run_for(sim::SimTime::ms(500));
  // 4 hops → 4 padding entries, each with plausible measurements.
  ASSERT_EQ(padding.size(), 4u);
  for (const auto& e : padding) {
    EXPECT_GE(e.lqi, 50);
    EXPECT_LE(e.lqi, 110);
    EXPECT_LT(e.rssi, 0);  // register units, below 0 at these powers
  }
}

TEST_F(RoutingFixture, PaddingStopsAtBudget) {
  make_line(4);
  std::vector<net::PadEntry> padding;
  bool got = false;
  tb->node(3).stack().subscribe(
      42, [&](const net::NetPacket& p, const net::LinkContext&) {
        padding = p.padding;
        got = true;
      });
  // A 60-byte app payload plus the 2-byte routing envelope fills 62 of
  // the 64-byte budget: room for exactly one padding entry.
  ASSERT_TRUE(tb->geographic(0)->send(
      4, 42, std::vector<std::uint8_t>(60, 0xaa), /*padding=*/true));
  tb->sim().run_for(sim::SimTime::ms(500));
  ASSERT_TRUE(got);
  EXPECT_EQ(padding.size(), 1u);  // budget exhausted after the first hop
}

TEST_F(RoutingFixture, LoopbackDelivery) {
  make_line(2);
  bool got = false;
  tb->node(0).stack().subscribe(
      42, [&](const net::NetPacket& p, const net::LinkContext& ctx) {
        got = ctx.local && p.src == 1 && p.dst == 1;
      });
  ASSERT_TRUE(tb->geographic(0)->send(1, 42, {5}));
  tb->sim().run_for(sim::SimTime::ms(100));
  EXPECT_TRUE(got);
  EXPECT_EQ(tb->geographic(0)->stats().delivered, 1u);
}

TEST_F(RoutingFixture, TtlExhaustionDropsPacket) {
  make_line(5);
  bool got = false;
  tb->node(4).stack().subscribe(
      42, [&](const net::NetPacket&, const net::LinkContext&) { got = true; });
  // Hand-craft a packet with ttl 1: it dies after the second hop.
  net::NetPacket p;
  p.src = 1;
  p.dst = 5;
  p.port = net::kPortGeographic;
  p.ttl = 1;
  p.payload = make_data_envelope(42, std::vector<std::uint8_t>{1});
  tb->node(0).stack().send_link(2, p);
  tb->sim().run_for(sim::SimTime::ms(500));
  EXPECT_FALSE(got);
  EXPECT_GE(tb->geographic(1)->stats().forwarded +
                tb->geographic(2)->stats().dropped_ttl,
            1u);
}

TEST_F(RoutingFixture, FloodingDeliversWithoutRoutes) {
  make_line(4, 2, /*flooding=*/true);
  int deliveries = 0;
  tb->node(3).stack().subscribe(
      42, [&](const net::NetPacket&, const net::LinkContext&) {
        ++deliveries;
      });
  ASSERT_TRUE(tb->flooding(0)->send(4, 42, {7}));
  tb->sim().run_for(sim::SimTime::ms(500));
  EXPECT_EQ(deliveries, 1);  // duplicate suppression at the destination
  EXPECT_FALSE(tb->flooding(0)->next_hop(4).has_value());
}

TEST_F(RoutingFixture, FloodingSuppressesDuplicateForwards) {
  make_line(4, 2, /*flooding=*/true);
  tb->accounting().reset();
  ASSERT_TRUE(tb->flooding(0)->send(4, 42, {7}));
  tb->sim().run_for(sim::SimTime::ms(500));
  // Each node rebroadcasts at most once: ≤ n transmissions on the port.
  const auto c = tb->accounting().for_port(42);
  EXPECT_LE(c.packets, 4u);
  EXPECT_GE(c.packets, 3u);
}

TEST_F(RoutingFixture, TreeConvergesTowardRoot) {
  make_line(5, 2, false, /*tree=*/true);
  // Warm-up ran 6 s with 2 s advertisements: gradient must have formed.
  for (int i = 1; i < 5; ++i) {
    ASSERT_TRUE(tb->tree(static_cast<std::size_t>(i))->has_route())
        << "node " << i + 1;
    EXPECT_EQ(tb->tree(static_cast<std::size_t>(i))->parent(),
              static_cast<net::Addr>(i))
        << "node " << i + 1;
  }
  // Path cost grows monotonically away from the root.
  EXPECT_LT(tb->tree(1)->path_cost(), tb->tree(3)->path_cost());
}

TEST_F(RoutingFixture, TreeDeliversToRoot) {
  make_line(5, 2, false, /*tree=*/true);
  std::vector<std::uint8_t> got;
  tb->node(0).stack().subscribe(
      42, [&](const net::NetPacket& p, const net::LinkContext&) {
        got = p.payload;
      });
  ASSERT_TRUE(tb->tree(4)->send(1, 42, {3, 2, 1}));
  tb->sim().run_for(sim::SimTime::ms(500));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{3, 2, 1}));
}

TEST_F(RoutingFixture, TreeHasNoRouteToNonRoot) {
  make_line(5, 2, false, true);
  // Collection tree: no unicast route to an arbitrary non-neighbor.
  EXPECT_FALSE(tb->tree(4)->next_hop(2).has_value());
  // But direct neighbors still work.
  EXPECT_EQ(tb->tree(4)->next_hop(4), 4);
}

TEST_F(RoutingFixture, TreeReroutesAroundBlacklistedParent) {
  make_line(3, 2, false, true);
  ASSERT_EQ(tb->tree(2)->parent(), 2);
  // Blacklist node 3's parent (node 2). The stale parent link is only
  // abandoned after the staleness window; advertisements from node 2 are
  // ignored once blacklisted.
  tb->node(2).neighbors().set_blacklisted(2, true);
  tb->sim().run_for(sim::SimTime::sec(10));
  // With its only upstream blacklisted, node 3 loses the route (a line
  // has no alternative parent at equal depth).
  EXPECT_FALSE(tb->tree(2)->next_hop(1).has_value());
}

}  // namespace
}  // namespace liteview::routing
