// Management messages exchanged between the LiteView command interpreter
// (workstation) and the runtime controller (node).
//
// "The command interpreter translates each user command into a sequence
// of radio messages. Each message header corresponds to one unique type,
// while the command parameters are embedded into message bodies."
// (paper Sec. IV-B). These are the *contents* carried by the reliable
// one-hop protocol in reliable.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kernel/neighbor_table.hpp"
#include "net/packet.hpp"

namespace liteview::lv {

enum class MsgType : std::uint8_t {
  // requests (workstation → node)
  kRadioGetConfig = 0x01,
  kRadioSetPower = 0x02,
  kRadioSetChannel = 0x03,
  kNbrList = 0x10,
  kNbrBlacklistAdd = 0x11,
  kNbrBlacklistRemove = 0x12,
  kNbrUpdate = 0x13,  ///< set beacon exchange period
  kExecPing = 0x20,   ///< start ping process with parameter string
  kExecTraceroute = 0x21,
  kListProcesses = 0x30,
  kLogFetch = 0x31,   ///< fetch the kernel event log
  kEnergyGet = 0x32,  ///< radio energy accounting
  kNetstat = 0x33,    ///< MAC/stack/routing statistics
  kScan = 0x34,       ///< channel survey (body: dwell ms per channel)
  // responses (node → workstation)
  kStatus = 0x80,       ///< generic ok/error
  kRadioConfig = 0x81,  ///< power + channel
  kNbrTable = 0x82,
  kPingResult = 0x83,
  kTracerouteReport = 0x84,  ///< one per hop, streamed
  kTracerouteDone = 0x85,
  kProcessList = 0x86,
  kLogData = 0x87,
  kEnergy = 0x88,
  kNetstatData = 0x89,
  kScanData = 0x8a,
};

// ---- request bodies --------------------------------------------------

struct RadioSetPower {
  std::uint8_t level = 0;
};
struct RadioSetChannel {
  std::uint8_t channel = 0;
};
struct NbrList {
  bool with_link_info = true;
};
struct NbrBlacklist {
  net::Addr addr = 0;
};
struct NbrUpdate {
  std::uint32_t beacon_period_ms = 0;
};
/// Ping/traceroute parameters travel as the raw string that will be
/// placed in the kernel parameter buffer — the paper's parameter-passing
/// syscall (Sec. IV-C4).
struct ExecCommand {
  std::string params;
};

// ---- response bodies ---------------------------------------------------

struct Status {
  bool ok = true;
  std::string detail;
};

struct RadioConfig {
  std::uint8_t power = 0;
  std::uint8_t channel = 0;
};

struct NbrTableEntryMsg {
  net::Addr addr = 0;
  std::string name;
  std::uint8_t lqi = 0;
  std::int8_t rssi = 0;
  bool blacklisted = false;
  std::uint32_t age_ms = 0;
};
struct NbrTableMsg {
  bool with_link_info = true;
  std::vector<NbrTableEntryMsg> entries;
};

/// One ping round's measurements, as the node-side ping process recorded
/// them (all timing sender-local; no time synchronization required).
struct PingRoundMsg {
  std::uint8_t round = 0;
  bool received = false;
  std::uint32_t rtt_us = 0;
  std::uint8_t lqi_fwd = 0, lqi_bwd = 0;
  std::int8_t rssi_fwd = 0, rssi_bwd = 0;
  std::uint8_t queue_local = 0, queue_remote = 0;
  /// Per-hop forward/backward link quality from padding (multi-hop ping).
  std::vector<net::PadEntry> hops_fwd;
  std::vector<net::PadEntry> hops_bwd;
};
struct PingResultMsg {
  net::Addr target = 0;
  std::uint8_t rounds = 0;
  std::uint8_t payload_len = 0;
  std::uint8_t power = 0;
  std::uint8_t channel = 0;
  std::vector<PingRoundMsg> rounds_data;
};

/// One traceroute hop report (paper Fig. 4 step 7: RTT + link quality of
/// one hop, delivered to the source).
/// Why a hop probe failed (reached == false). Lets the end user tell a
/// routing hole ("no route") from a dead/unreachable next hop ("no
/// reply") when reading a partial path.
enum class TrFailReason : std::uint8_t {
  kNone = 0,     ///< hop succeeded
  kNoRoute = 1,  ///< prober has no next hop toward the destination
  kNoReply = 2,  ///< next hop never answered the probe (crashed? jammed?)
};

[[nodiscard]] const char* to_string(TrFailReason r);

struct TracerouteReportMsg {
  std::uint16_t task_id = 0;
  std::uint8_t hop_index = 0;     ///< 0-based index of the probed link
  net::Addr prober = 0;           ///< near end of the link
  net::Addr next = 0;             ///< far end ("Reply from <next>")
  bool reached = true;            ///< probe reply received?
  TrFailReason fail_reason = TrFailReason::kNone;
  std::uint32_t rtt_us = 0;
  std::uint8_t lqi_fwd = 0, lqi_bwd = 0;
  std::int8_t rssi_fwd = 0, rssi_bwd = 0;
  std::uint8_t queue_near = 0, queue_far = 0;
  bool is_final = false;          ///< next == traceroute destination
};

struct TracerouteDoneMsg {
  std::uint16_t task_id = 0;
  std::uint8_t hops = 0;
  std::uint8_t received = 0;
  std::string protocol_name;
};

struct ProcessInfoMsg {
  std::string name;
  bool running = false;
  std::uint32_t flash_bytes = 0;
  std::uint32_t ram_bytes = 0;
};
struct ProcessListMsg {
  std::vector<ProcessInfoMsg> processes;
};

struct LogEventMsg {
  std::uint32_t time_ms = 0;
  std::uint16_t code = 0;
  std::uint32_t arg = 0;
};
struct LogDataMsg {
  std::uint32_t total = 0;    ///< events ever logged
  std::uint32_t dropped = 0;  ///< overwritten by the ring
  std::vector<LogEventMsg> events;
};

struct EnergyMsg {
  std::uint32_t uptime_ms = 0;
  std::uint64_t tx_uj = 0;      ///< microjoules spent transmitting
  std::uint64_t listen_uj = 0;  ///< microjoules spent listening
};

struct ScanRequest {
  std::uint16_t dwell_ms = 50;  ///< sampling time per channel
};
struct ScanEntryMsg {
  std::uint8_t channel = 0;
  std::int8_t rssi = -128;  ///< max in-band energy observed (register)
};
struct ScanDataMsg {
  std::vector<ScanEntryMsg> entries;
};

struct RoutingStatMsg {
  std::uint8_t port = 0;
  std::string name;
  std::uint32_t originated = 0;
  std::uint32_t forwarded = 0;
  std::uint32_t delivered = 0;
  std::uint32_t dropped_no_route = 0;
  std::uint32_t dropped_ttl = 0;
  std::uint32_t control_sent = 0;
};
struct NetstatMsg {
  // MAC
  std::uint32_t mac_enqueued = 0;
  std::uint32_t mac_sent = 0;
  std::uint32_t mac_dropped_queue_full = 0;
  std::uint32_t mac_dropped_channel_busy = 0;
  std::uint32_t mac_rx_delivered = 0;
  std::uint32_t mac_rx_crc_failures = 0;
  std::uint32_t mac_cca_busy = 0;
  // stack
  std::uint32_t net_delivered = 0;
  std::uint32_t net_local = 0;
  std::uint32_t net_no_subscriber = 0;
  std::uint32_t net_malformed = 0;
  std::vector<RoutingStatMsg> protocols;
};

// ---- envelope codec ----------------------------------------------------

/// A fully decoded management message.
struct MgmtMessage {
  MsgType type{};
  std::vector<std::uint8_t> body;
};

[[nodiscard]] std::vector<std::uint8_t> encode_mgmt(MsgType type,
                                                    std::span<const std::uint8_t> body);
[[nodiscard]] std::optional<MgmtMessage> decode_mgmt(
    std::span<const std::uint8_t> bytes);

// Body codecs. Each encode_* returns the body only; pair with encode_mgmt.
[[nodiscard]] std::vector<std::uint8_t> encode_body(const RadioSetPower&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const RadioSetChannel&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const NbrList&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const NbrBlacklist&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const NbrUpdate&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const ExecCommand&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const Status&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const RadioConfig&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const NbrTableMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const PingResultMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const TracerouteReportMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const TracerouteDoneMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const ProcessListMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const LogDataMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const EnergyMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const ScanRequest&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const ScanDataMsg&);
[[nodiscard]] std::vector<std::uint8_t> encode_body(const NetstatMsg&);

[[nodiscard]] std::optional<RadioSetPower> decode_radio_set_power(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<RadioSetChannel> decode_radio_set_channel(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<NbrList> decode_nbr_list(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<NbrBlacklist> decode_nbr_blacklist(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<NbrUpdate> decode_nbr_update(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<ExecCommand> decode_exec(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<Status> decode_status(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<RadioConfig> decode_radio_config(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<NbrTableMsg> decode_nbr_table(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<PingResultMsg> decode_ping_result(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<TracerouteReportMsg> decode_traceroute_report(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<TracerouteDoneMsg> decode_traceroute_done(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<ProcessListMsg> decode_process_list(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<LogDataMsg> decode_log_data(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<EnergyMsg> decode_energy(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<ScanRequest> decode_scan_request(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<ScanDataMsg> decode_scan_data(
    std::span<const std::uint8_t>);
[[nodiscard]] std::optional<NetstatMsg> decode_netstat(
    std::span<const std::uint8_t>);

}  // namespace liteview::lv
