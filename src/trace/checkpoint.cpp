#include "trace/checkpoint.hpp"

#include <cinttypes>
#include <cstring>

#include "trace/record.hpp"
#include "util/strings.hpp"

namespace liteview::trace {

namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'V', 'C', 'P'};
constexpr std::uint8_t kVersion = 1;

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t buf[kMaxVarintBytes];
  const std::size_t n = put_varint(buf, v);
  out.insert(out.end(), buf, buf + n);
}

void append_blob(std::vector<std::uint8_t>& out,
                 std::span<const std::uint8_t> blob) {
  append_varint(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

bool read_blob(std::span<const std::uint8_t> in, std::size_t& pos,
               std::vector<std::uint8_t>& blob) {
  std::uint64_t len = 0;
  if (!get_varint(in, pos, len)) return false;
  if (len > in.size() - pos) return false;
  blob.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
              in.begin() + static_cast<std::ptrdiff_t>(pos + len));
  pos += static_cast<std::size_t>(len);
  return true;
}

}  // namespace

std::vector<std::uint8_t> serialize(const Checkpoint& cp) {
  std::vector<std::uint8_t> out;
  for (std::uint8_t m : kMagic) out.push_back(m);
  out.push_back(kVersion);
  append_varint(out, cp.seed);
  append_varint(out, static_cast<std::uint64_t>(cp.t_ns));
  append_varint(out, cp.executed_events);
  append_blob(out, {reinterpret_cast<const std::uint8_t*>(cp.meta.data()),
                    cp.meta.size()});
  append_varint(out, cp.sections.size());
  for (const auto& s : cp.sections) {
    append_blob(out, {reinterpret_cast<const std::uint8_t*>(s.name.data()),
                      s.name.size()});
    append_blob(out, s.bytes);
  }
  return out;
}

std::optional<Checkpoint> parse_checkpoint(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 5 || std::memcmp(bytes.data(), kMagic, 4) != 0)
    return std::nullopt;
  if (bytes[4] != kVersion) return std::nullopt;
  std::size_t pos = 5;

  Checkpoint cp;
  std::uint64_t t = 0;
  if (!get_varint(bytes, pos, cp.seed) || !get_varint(bytes, pos, t) ||
      !get_varint(bytes, pos, cp.executed_events)) {
    return std::nullopt;
  }
  cp.t_ns = static_cast<std::int64_t>(t);

  std::vector<std::uint8_t> blob;
  if (!read_blob(bytes, pos, blob)) return std::nullopt;
  cp.meta.assign(blob.begin(), blob.end());

  std::uint64_t n_sections = 0;
  if (!get_varint(bytes, pos, n_sections)) return std::nullopt;
  if (n_sections > bytes.size()) return std::nullopt;
  cp.sections.reserve(static_cast<std::size_t>(n_sections));
  for (std::uint64_t i = 0; i < n_sections; ++i) {
    Section s;
    if (!read_blob(bytes, pos, blob)) return std::nullopt;
    s.name.assign(blob.begin(), blob.end());
    if (!read_blob(bytes, pos, s.bytes)) return std::nullopt;
    cp.sections.push_back(std::move(s));
  }
  if (pos != bytes.size()) return std::nullopt;
  return cp;
}

std::string describe(const Checkpoint& cp) {
  std::size_t section_bytes = 0;
  for (const auto& s : cp.sections) section_bytes += s.bytes.size();
  return util::format("seed=%" PRIu64 " t=%.9fs events=%" PRIu64
                      " sections=%zu (%zu bytes)",
                      cp.seed, cp.t_ns / 1e9, cp.executed_events,
                      cp.sections.size(), section_bytes);
}

}  // namespace liteview::trace
