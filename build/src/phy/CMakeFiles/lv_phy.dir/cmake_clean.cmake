file(REMOVE_RECURSE
  "CMakeFiles/lv_phy.dir/ber.cpp.o"
  "CMakeFiles/lv_phy.dir/ber.cpp.o.d"
  "CMakeFiles/lv_phy.dir/cc2420.cpp.o"
  "CMakeFiles/lv_phy.dir/cc2420.cpp.o.d"
  "CMakeFiles/lv_phy.dir/energy.cpp.o"
  "CMakeFiles/lv_phy.dir/energy.cpp.o.d"
  "CMakeFiles/lv_phy.dir/medium.cpp.o"
  "CMakeFiles/lv_phy.dir/medium.cpp.o.d"
  "CMakeFiles/lv_phy.dir/propagation.cpp.o"
  "CMakeFiles/lv_phy.dir/propagation.cpp.o.d"
  "liblv_phy.a"
  "liblv_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
