file(REMOVE_RECURSE
  "liblv_kernel.a"
)
