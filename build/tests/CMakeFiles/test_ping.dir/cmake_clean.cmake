file(REMOVE_RECURSE
  "CMakeFiles/test_ping.dir/test_ping.cpp.o"
  "CMakeFiles/test_ping.dir/test_ping.cpp.o.d"
  "test_ping"
  "test_ping.pdb"
  "test_ping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
