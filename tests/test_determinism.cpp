// Golden-trace determinism regression — the gate that keeps spatial
// culling, the gain cache, the flight recorder, and sniffer radios
// honest.
//
// A 40-node random deployment under a multi-fault scenario (deployment-
// wide burst loss, crashes, a jamming window, churn) is run while
// capturing a *behavior trace*: every transmission (sender, channel,
// size, timing, payload CRC), every fault decision, and the medium's
// final counters — all encoded as lv::trace records inside a real "LVTR"
// capture, so a red gate can be dumped to disk and fed to
// tools/trace_diff, which names the first divergent record instead of a
// bare "traces differ".
//
// The suite asserts the capture is byte-identical across (a) two runs
// with the same seed, (b) each optimization toggled (culling, gain
// cache), and (c) each *observer* toggled: flight recording on/off and
// promiscuous sniffer radios attached/absent must be invisible to the
// simulation, byte for byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fault/scenario.hpp"
#include "testbed/testbed.hpp"
#include "trace/diff.hpp"
#include "util/crc16.hpp"

namespace liteview {
namespace {

constexpr int kNodes = 40;
constexpr double kSideM = 55.0;       // dense: every node hears many others
constexpr double kMinSpacingM = 3.0;
constexpr std::int64_t kRunSeconds = 12;

/// The scripted pathology mix: burst loss everywhere, two crashes (one
/// rebooting), a jam window on the deployment channel, churn at the end.
const char* kScenario = R"(
burst * pgb=0.05 pbg=0.4 lossb=1.0
crash 7 at=4s for=3s
crash 19 at=6s
jam ch=17 at=8s for=400ms
churn 2,3,11,23,31 period=1500ms down=500ms until=11s
)";

struct RunOptions {
  bool spatial_culling = true;
  bool gain_cache = true;
  /// Batched SIMD kernels in the medium. The scalar fallback replays the
  /// exact lane-blocked accumulation order, so toggling this must not
  /// perturb the behavior trace by a single byte.
  bool simd = true;
  /// Attach a full flight recorder to every layer. Must not perturb the
  /// behavior trace by a single byte.
  bool flight_recorder = false;
  /// Promiscuous receive-only radios dropped into the deployment. Must
  /// not perturb the behavior trace by a single byte.
  int sniffers = 0;
};

struct RunResult {
  std::vector<std::uint8_t> behavior;  ///< "LVTR" capture (see above)
  std::vector<std::uint8_t> recorder;  ///< full recorder capture (or empty)
  std::uint64_t frames_sniffed = 0;
};

RunResult run_scenario(std::uint64_t seed, const RunOptions& opt) {
  testbed::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.spatial_culling = opt.spatial_culling;
  cfg.link_gain_cache = opt.gain_cache;
  cfg.simd = opt.simd;
  cfg.flight_recorder = opt.flight_recorder;
  auto tb = testbed::Testbed::random_square(kNodes, kSideM, kMinSpacingM, cfg);

  for (int s = 0; s < opt.sniffers; ++s) {
    // Spread sniffers across the square so they overhear real traffic.
    const double frac = (s + 1.0) / (opt.sniffers + 1.0);
    tb->add_sniffer(phy::Position{kSideM * frac, kSideM * frac},
                    cfg.initial_channel);
  }

  // Behavior capture: one kTest ring for transmissions + counters, one
  // kFault ring mirroring the fault plane's decisions. Rings are large
  // enough that nothing is ever evicted.
  trace::FlightRecorder behavior(4u << 20);
  const auto tx_ring = behavior.register_source(
      trace::source_id(trace::Domain::kTest, 0));
  const auto fault_ring = behavior.register_source(
      trace::source_id(trace::Domain::kFault, 0));

  tb->medium().set_sniffer([&](const phy::SniffedFrame& f) {
    // (airtime << 16) | crc folds the last two observables into arg d.
    behavior.append(
        tx_ring, trace::RecKind::kUser, f.start.nanoseconds(), f.from,
        f.channel, f.psdu_bytes,
        (static_cast<std::uint64_t>(f.airtime.nanoseconds()) << 16) |
            util::crc16_ccitt(f.psdu));
  });

  const auto scenario = fault::parse_scenario(kScenario);
  EXPECT_TRUE(scenario.has_value());
  EXPECT_TRUE(tb->fault().load(*scenario));

  tb->sim().run_for(sim::SimTime::sec(kRunSeconds));

  // The scenario only bites if real traffic flowed (beacons default on).
  EXPECT_GT(tb->medium().frames_sent(), 100u);
  EXPECT_GT(tb->fault().totals().frames_dropped, 0u);

  // Fault decisions ride in their own ring: trace_bytes() is already
  // codec records, re-append them so they carry the capture's sequence.
  const auto faults = tb->fault().trace_bytes();
  std::size_t pos = 0;
  trace::Record rec;
  while (pos < faults.size() &&
         trace::decode_record(faults, pos, rec)) {
    behavior.append(fault_ring, trace::RecKind::kFault, rec.t_ns,
                    rec.args[0], rec.args[1], rec.args[2]);
  }
  EXPECT_EQ(pos, faults.size());

  // The medium's full counter block: a bug that only shifted statistics
  // would still flip these records.
  const std::uint64_t counters[] = {
      tb->medium().frames_sent(),
      tb->medium().frames_delivered(),
      tb->medium().frames_corrupted(),
      tb->medium().frames_below_sensitivity(),
      tb->medium().frames_missed_busy_rx(),
      tb->medium().frames_missed_retune(),
      tb->medium().frames_dropped_fault(),
      tb->sim().executed_events(),
  };
  const std::int64_t end_ns = tb->sim().now().nanoseconds();
  for (std::size_t i = 0; i < std::size(counters); ++i) {
    behavior.append(tx_ring, trace::RecKind::kCounter, end_ns, i,
                    counters[i]);
  }

  RunResult r;
  r.behavior = behavior.serialize();
  if (tb->recorder() != nullptr) r.recorder = tb->recorder()->serialize();
  for (std::size_t s = 0; s < tb->sniffer_count(); ++s) {
    r.frames_sniffed += tb->sniffer_log(s).frames;
  }
  return r;
}

void write_capture(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
}

/// Byte-compare two captures; on mismatch dump both to disk and report
/// the first divergent record, tools/trace_diff style.
void expect_identical(const std::vector<std::uint8_t>& a,
                      const std::vector<std::uint8_t>& b, const char* tag) {
  if (a == b) return;
  const std::string fa = std::string(tag) + "_a.lvtr";
  const std::string fb = std::string(tag) + "_b.lvtr";
  write_capture(fa, a);
  write_capture(fb, b);
  const auto d = trace::diff_bytes(a, b);
  ADD_FAILURE() << "captures diverge (dumped " << fa << " and " << fb
                << "; inspect with tools/trace_diff):\n"
                << d.summary;
}

TEST(Determinism, SameSeedSameTrace) {
  const auto t1 = run_scenario(1234, {});
  const auto t2 = run_scenario(1234, {});
  ASSERT_FALSE(t1.behavior.empty());
  expect_identical(t1.behavior, t2.behavior, "det_same_seed");
}

TEST(Determinism, SpatialCullingIsInvisible) {
  RunOptions unculled;
  unculled.spatial_culling = false;
  const auto culled = run_scenario(1234, {});
  const auto naive = run_scenario(1234, unculled);
  ASSERT_FALSE(culled.behavior.empty());
  expect_identical(culled.behavior, naive.behavior, "det_culling");
}

TEST(Determinism, GainCacheIsInvisible) {
  // The memoized per-link gain plane must be exact: cached and directly
  // recomputed path loss are the same doubles, and no RNG stream is
  // involved in serving a hit — so the full multi-fault trace, counters
  // included, is byte-identical with the cache on vs. forced off.
  RunOptions direct;
  direct.gain_cache = false;
  const auto cached = run_scenario(1234, {});
  const auto recomputed = run_scenario(1234, direct);
  ASSERT_FALSE(cached.behavior.empty());
  expect_identical(cached.behavior, recomputed.behavior, "det_gain_cache");
}

TEST(Determinism, SimdKernelsAreInvisible) {
  // The batched AVX2 plane vs. the forced-scalar fallback, end to end:
  // identical lane-blocked accumulation order, identical RNG stream
  // consumption (the fast paths shed the same receptions), so the full
  // multi-fault trace is byte-identical with SIMD on vs. off. On a host
  // without AVX2 (or under LV_DISABLE_SIMD) both runs take the scalar
  // path and this degenerates to SameSeedSameTrace — still a valid gate.
  RunOptions scalar;
  scalar.simd = false;
  const auto vec = run_scenario(1234, {});
  const auto plain = run_scenario(1234, scalar);
  ASSERT_FALSE(vec.behavior.empty());
  expect_identical(vec.behavior, plain.behavior, "det_simd");
}

TEST(Determinism, GainCacheAndCullingComposeInvisibly) {
  // All the medium's optimizations off together — the fully naive O(n)
  // recomputing scalar medium — against all on (the production
  // configuration).
  RunOptions naive;
  naive.spatial_culling = false;
  naive.gain_cache = false;
  naive.simd = false;
  const auto fast = run_scenario(1234, {});
  const auto slow = run_scenario(1234, naive);
  ASSERT_FALSE(fast.behavior.empty());
  expect_identical(fast.behavior, slow.behavior, "det_naive");
}

TEST(Determinism, FlightRecorderIsInvisible) {
  // Recording is observational only: no RNG draws, no scheduling, no
  // allocation on any decision path. The behavior capture must not move
  // by one byte when every layer records into rings.
  RunOptions recording;
  recording.flight_recorder = true;
  const auto off = run_scenario(1234, {});
  const auto on = run_scenario(1234, recording);
  ASSERT_FALSE(on.recorder.empty());
  expect_identical(off.behavior, on.behavior, "det_recorder");
}

TEST(Determinism, SnifferRadiosAreInvisible) {
  // Promiscuous sniffers overhear real frames under the real physics but
  // sit outside the spatial grid, the channel population counts, the
  // shared RNG streams, and the fault plane. With three of them planted
  // mid-deployment, the behavior capture — transmissions, fault
  // decisions, every counter — must stay byte-identical.
  RunOptions sniffed;
  sniffed.sniffers = 3;
  const auto without = run_scenario(1234, {});
  const auto with = run_scenario(1234, sniffed);
  EXPECT_GT(with.frames_sniffed, 0u);  // they actually heard traffic
  expect_identical(without.behavior, with.behavior, "det_sniffers");
}

TEST(Determinism, RecorderCaptureIsCullingInvariant) {
  // Stronger than the behavior gate: the *full recorder capture* — every
  // dispatch, PHY, MAC, routing, and fault record from every ring — is
  // identical with spatial culling on vs. off. Holds because the culled
  // walk only skips below-sensitivity receptions, which are never
  // recorded.
  RunOptions fast;
  fast.flight_recorder = true;
  RunOptions naive = fast;
  naive.spatial_culling = false;
  const auto a = run_scenario(1234, fast);
  const auto b = run_scenario(1234, naive);
  ASSERT_FALSE(a.recorder.empty());
  expect_identical(a.recorder, b.recorder, "det_recorder_culling");
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  // Sanity: the trace actually depends on the randomness it claims to
  // capture (otherwise the gates above would pass vacuously).
  const auto t1 = run_scenario(1234, {});
  const auto t2 = run_scenario(5678, {});
  EXPECT_NE(t1.behavior, t2.behavior);
}

}  // namespace
}  // namespace liteview
