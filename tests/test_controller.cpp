// Tests for the runtime controller + workstation management operations:
// the full command path over the reliable one-hop protocol.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace liteview::lv {
namespace {

struct CtlFixture : ::testing::Test {
  void make(int n, std::uint64_t seed = 2) {
    tb = testbed::Testbed::paper_line(n, seed);
    tb->warm_up();
    tb->workstation().move_near(tb->node(0).position());
  }
  std::unique_ptr<testbed::Testbed> tb;
};

TEST_F(CtlFixture, RadioGetReflectsNodeState) {
  make(2);
  const auto rc = tb->workstation().radio_get(1);
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->power, 10);
  EXPECT_EQ(rc->channel, 17);
}

TEST_F(CtlFixture, RadioSetPowerAppliesAndConfirms) {
  make(2);
  const auto st = tb->workstation().radio_set_power(1, 25);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok);
  EXPECT_EQ(tb->node(0).pa_level(), 25);
}

TEST_F(CtlFixture, RadioSetPowerRejectsInvalid) {
  make(2);
  const auto st = tb->workstation().radio_set_power(1, 77);
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
  EXPECT_EQ(tb->node(0).pa_level(), 10);  // unchanged
}

TEST_F(CtlFixture, RadioSetChannelAcksBeforeRetuning) {
  make(2);
  const auto st = tb->workstation().radio_set_channel(1, 21);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok);  // confirmation arrived on the old channel
  EXPECT_EQ(tb->node(0).channel(), 21);  // retuned after the ack
}

TEST_F(CtlFixture, NbrListMatchesKernelTable) {
  make(3);
  tb->workstation().move_near(tb->node(1).position());
  const auto table = tb->workstation().nbr_list(2, true);
  ASSERT_TRUE(table.has_value());
  ASSERT_EQ(table->entries.size(), 2u);
  std::vector<net::Addr> addrs;
  for (const auto& e : table->entries) {
    addrs.push_back(e.addr);
    EXPECT_GE(e.lqi, 50);
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.blacklisted);
  }
  std::sort(addrs.begin(), addrs.end());
  EXPECT_EQ(addrs, (std::vector<net::Addr>{1, 3}));
}

TEST_F(CtlFixture, BlacklistRoundTrip) {
  make(3);
  tb->workstation().move_near(tb->node(1).position());
  auto st = tb->workstation().blacklist(2, 3, true);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok);
  EXPECT_FALSE(tb->node(1).neighbors().usable(3));

  st = tb->workstation().blacklist(2, 3, false);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok);
  EXPECT_TRUE(tb->node(1).neighbors().usable(3));
}

TEST_F(CtlFixture, BlacklistUnknownNeighborFails) {
  make(2);
  const auto st = tb->workstation().blacklist(1, 77, true);
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
}

TEST_F(CtlFixture, NbrUpdateChangesBeaconPeriod) {
  make(2);
  const auto st = tb->workstation().nbr_update(1, 7'000);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok);
  EXPECT_EQ(tb->node(0).beacon_period(), sim::SimTime::ms(7'000));
}

TEST_F(CtlFixture, NbrUpdateRejectsTooFast) {
  make(2);
  const auto st = tb->workstation().nbr_update(1, 10);
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
}

TEST_F(CtlFixture, PsListsLiteViewSuite) {
  make(2);
  const auto list = tb->workstation().ps(1);
  ASSERT_TRUE(list.has_value());
  std::vector<std::string> names;
  for (const auto& p : list->processes) names.push_back(p.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "ping"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "traceroute"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "runtimectl"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "geofwd"), names.end());
  // Paper-reported footprints surface through ps.
  for (const auto& p : list->processes) {
    if (p.name == "ping") {
      EXPECT_EQ(p.flash_bytes, 2148u);
      EXPECT_EQ(p.ram_bytes, 278u);
    }
    if (p.name == "traceroute") {
      EXPECT_EQ(p.flash_bytes, 2820u);
      EXPECT_EQ(p.ram_bytes, 272u);
    }
  }
}

TEST_F(CtlFixture, ExecPingEndToEnd) {
  make(2);
  const auto run = tb->workstation().ping(1, "192.168.0.2 round=2 length=32", 2);
  ASSERT_TRUE(run.result.has_value());
  EXPECT_EQ(run.result->target, 2);
  ASSERT_EQ(run.result->rounds_data.size(), 2u);
  EXPECT_TRUE(run.result->rounds_data[0].received);
}

TEST_F(CtlFixture, ExecPingBadParamsYieldsNoResult) {
  make(2);
  const auto run = tb->workstation().ping(1, "no.such.host round=1", 1);
  EXPECT_FALSE(run.result.has_value());
}

TEST_F(CtlFixture, ExecTracerouteStreamsReports) {
  make(4);
  const auto run =
      tb->workstation().traceroute(1, "192.168.0.4 round=1 length=32 port=10");
  ASSERT_TRUE(run.done.has_value());
  ASSERT_EQ(run.reports.size(), 3u);
  // Arrival times increase along the path (paper Fig. 5's x-axis).
  for (std::size_t i = 1; i < run.reports.size(); ++i) {
    EXPECT_GE(run.reports[i].arrival, run.reports[i - 1].arrival);
  }
  EXPECT_EQ(run.done->protocol_name, "geographic forwarding");
}

TEST_F(CtlFixture, ResponseArrivesWithinFixedBudget) {
  make(2);
  // The paper's 500 ms response budget: the command waits the window out
  // and the answer is there.
  const auto t0 = tb->sim().now();
  const auto rc = tb->workstation().radio_get(1);
  const auto elapsed = tb->sim().now() - t0;
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(elapsed, sim::SimTime::ms(500));
}

TEST_F(CtlFixture, CommandToDeadNodeTimesOut) {
  make(2);
  // Node 2 is out of the workstation's whisper range (power level 3).
  const auto rc = tb->workstation().radio_get(2);
  EXPECT_FALSE(rc.has_value());
}

TEST_F(CtlFixture, SequentialCommandsToDifferentNodes) {
  make(3);
  // Walk to node 2 and manage it, then walk back to node 1.
  tb->workstation().move_near(tb->node(1).position());
  auto rc = tb->workstation().radio_get(2);
  ASSERT_TRUE(rc.has_value());
  tb->workstation().move_near(tb->node(0).position());
  rc = tb->workstation().radio_get(1);
  ASSERT_TRUE(rc.has_value());
}

}  // namespace
}  // namespace liteview::lv
