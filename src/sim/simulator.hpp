// Deterministic discrete-event simulator.
//
// Single-threaded event loop with a total order over events:
// (timestamp, insertion sequence). Two runs with identical seeds execute
// identical event sequences. Parallelism in this codebase happens *across*
// independent Simulator instances (Monte-Carlo replication), never inside
// one — the shared-nothing pattern the HPC guides recommend.
//
// The event core is allocation-free in steady state (DESIGN.md §9):
// callbacks live inline in slab-pooled event slots (no per-event
// shared_ptr or std::function heap capture), pending events are ordered
// by a calendar queue (Brown 1988 — the structure classical network
// simulators use) whose buckets are intrusive chains threaded through the
// pooled slots, and cancellation is a generation compare against the slot
// — so schedule→fire→reschedule cycles never touch the allocator once the
// arena and bucket table are warm. Queue operations touch only a 32-byte
// metadata record per event; the callback body lives in a parallel slab
// and is read once, at firing.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "util/inplace_function.hpp"
#include "util/rng.hpp"

namespace liteview::trace {
class FlightRecorder;
}
namespace liteview::util {
class ByteWriter;
}

namespace liteview::sim {

class ShardEngine;

/// Event callbacks are stored inline: captures beyond 48 bytes fail to
/// compile (box cold state in a shared_ptr at the call site instead).
using EventCallback = util::InplaceFunction<void(), 48>;

namespace detail {

inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// Queue-facing half of a pooled event: everything ordering, chaining and
/// cancellation need, in exactly 32 bytes so two records share a cache
/// line. The callback body lives in a parallel slab (EventArena::cb) that
/// queue operations never touch.
struct EventMeta {
  SimTime when;            ///< firing time (valid while queued)
  std::uint64_t seq = 0;   ///< tie-break within equal `when` (FIFO)
  SimTime period;          ///< repeating interval (unused for one-shots)
  /// Next slot in this bucket's chain while queued; next free slot while
  /// on the free list. A slot is never both.
  std::uint32_t next = kNoSlot;
  /// generation << 2 | cancelled << 1 | repeating. The 30-bit generation
  /// stales every outstanding handle when the slot is recycled.
  std::uint32_t genflags = 0;
};
static_assert(sizeof(EventMeta) == 32, "metadata must stay cache-compact");

inline constexpr std::uint32_t kFlagRepeating = 1u;
inline constexpr std::uint32_t kFlagCancelled = 2u;
inline constexpr std::uint32_t kGenIncrement = 4u;

/// Slab-pooled slot storage. Slabs are fixed-size arrays that are never
/// relocated or freed while the arena lives, so references into them stay
/// valid across arbitrary scheduling from inside a running callback. The
/// arena outlives its Simulator for as long as any EventHandle still
/// points at it (intrusive, non-atomic refcount — handles must stay on
/// the Simulator's thread, which the shared-nothing replication design
/// already guarantees).
struct EventArena {
  static constexpr std::uint32_t kSlabBits = 8;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

  std::vector<std::unique_ptr<EventMeta[]>> meta_slabs;
  std::vector<std::unique_ptr<EventCallback[]>> cb_slabs;
  std::uint32_t free_head = kNoSlot;
  std::uint32_t slot_count = 0;
  std::size_t handle_refs = 0;
  bool sim_alive = true;

  [[nodiscard]] EventMeta& meta(std::uint32_t idx) noexcept {
    return meta_slabs[idx >> kSlabBits][idx & (kSlabSize - 1)];
  }
  [[nodiscard]] EventCallback& cb(std::uint32_t idx) noexcept {
    return cb_slabs[idx >> kSlabBits][idx & (kSlabSize - 1)];
  }

  /// Pops a recycled slot (or grows a slab) and installs the callback.
  /// Taking the callback by reference saves a 48-byte relocation per
  /// scheduled event versus a by-value chain.
  [[nodiscard]] std::uint32_t acquire(EventCallback&& f) {
    std::uint32_t idx;
    if (free_head != kNoSlot) {
      idx = free_head;
      free_head = meta(idx).next;
    } else {
      if (slot_count == meta_slabs.size() * kSlabSize) {
        meta_slabs.push_back(std::make_unique<EventMeta[]>(kSlabSize));
        cb_slabs.push_back(std::make_unique<EventCallback[]>(kSlabSize));
      }
      idx = slot_count++;
    }
    meta(idx).genflags &= ~(kFlagRepeating | kFlagCancelled);
    cb(idx) = std::move(f);
    return idx;
  }

  void release(std::uint32_t idx) noexcept {
    cb(idx).reset();  // drop captures now, not at next reuse
    EventMeta& m = meta(idx);
    // Clear flags and advance the generation (wraps modulo 2^30), staling
    // every outstanding handle to this slot.
    m.genflags = (m.genflags | kFlagRepeating | kFlagCancelled) + 1u;
    m.next = free_head;
    free_head = idx;
  }
};

}  // namespace detail

/// Handle for cancelling a scheduled event. Cheap to copy; cancellation is
/// lazy (the event stays queued but its body is skipped). A handle may
/// outlive its Simulator — every operation degrades to a no-op once the
/// event (or the whole Simulator) is gone. Generations are 30-bit: a
/// handle could theoretically be resurrected after exactly 2^30 reuses of
/// its slot, far beyond any simulated horizon.
class EventHandle {
 public:
  EventHandle() noexcept = default;
  EventHandle(const EventHandle& other) noexcept
      : arena_(other.arena_), slot_(other.slot_), gen_(other.gen_) {
    if (arena_ != nullptr) ++arena_->handle_refs;
  }
  EventHandle(EventHandle&& other) noexcept
      : arena_(other.arena_), slot_(other.slot_), gen_(other.gen_) {
    other.arena_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& other) noexcept {
    if (this != &other) {
      drop();
      arena_ = other.arena_;
      slot_ = other.slot_;
      gen_ = other.gen_;
      if (arena_ != nullptr) ++arena_->handle_refs;
    }
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      drop();
      arena_ = other.arena_;
      slot_ = other.slot_;
      gen_ = other.gen_;
      other.arena_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() { drop(); }

  void cancel() const noexcept {
    if (detail::EventMeta* m = live_meta()) {
      m->genflags |= detail::kFlagCancelled;
    }
  }
  [[nodiscard]] bool valid() const noexcept { return arena_ != nullptr; }
  /// True once this handle can no longer cause a firing: after cancel(),
  /// and after a one-shot event has executed (its slot was recycled).
  [[nodiscard]] bool cancelled() const noexcept {
    if (arena_ == nullptr) return false;
    if (!arena_->sim_alive) return true;  // simulator gone: can never fire
    const detail::EventMeta* m = live_meta();
    return m == nullptr || (m->genflags & detail::kFlagCancelled) != 0;
  }

 private:
  EventHandle(detail::EventArena* arena, std::uint32_t slot,
              std::uint32_t gen) noexcept
      : arena_(arena), slot_(slot), gen_(gen) {
    ++arena_->handle_refs;
  }

  /// The slot this handle was minted for, or nullptr when it has since
  /// been cancelled away, fired, or recycled (generation mismatch).
  [[nodiscard]] detail::EventMeta* live_meta() const noexcept {
    if (arena_ == nullptr || slot_ >= arena_->slot_count) return nullptr;
    detail::EventMeta& m = arena_->meta(slot_);
    return (m.genflags >> 2) == gen_ ? &m : nullptr;
  }

  void drop() noexcept {
    if (arena_ == nullptr) return;
    if (--arena_->handle_refs == 0 && !arena_->sim_alive) delete arena_;
    arena_ = nullptr;
  }

  detail::EventArena* arena_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
  friend class Simulator;
};

class Simulator {
 public:
  using Callback = EventCallback;

  explicit Simulator(std::uint64_t seed = 1)
      : arena_(new detail::EventArena), rng_root_(seed) {
    buckets_.assign(kInitialBuckets, Bucket{});
    occupancy_.assign(kInitialBuckets / 64, 0);
  }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() {
    if (log_time_installed_) uninstall_log_time_source();
    arena_->sim_alive = false;
    if (arena_->handle_refs == 0) delete arena_;
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule at an absolute simulated time (must be >= now()).
  ///
  /// Sharded-mode caveat: when called from inside a ShardEngine cell bin
  /// (src/sim/shard.hpp), the call is deferred to the batch barrier and
  /// an *empty* handle is returned — callers on that path must not rely
  /// on cancelling the event. Everywhere else the behavior is unchanged.
  EventHandle schedule_at(SimTime when, Callback cb);

  /// Schedule after a relative delay.
  EventHandle schedule_in(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Repeating event; first firing after `period`. Returns a handle that
  /// cancels all future firings. Rescheduling reuses the same pooled slot
  /// every tick — no per-tick allocation.
  EventHandle schedule_every(SimTime period, Callback cb);

  /// Run until the event queue drains or `limit` is reached (whichever is
  /// first). The clock advances to the time of the last executed event.
  /// While a ShardEngine is installed, delegates to its epoch loop — all
  /// existing drivers (tests, benches, checkpoint fast-forward) route
  /// through the sharded executor without changes.
  void run_until(SimTime limit);

  /// Advance exactly `d` from the current time.
  void run_for(SimTime d) { run_until(now_ + d); }

  /// Drain everything (use only when the model is known to quiesce).
  void run() { run_until(SimTime::max()); }

  /// Execute at most one event; returns false when the queue is empty or
  /// the head is beyond `limit`.
  bool step(SimTime limit = SimTime::max());

  /// Pending events, including lazily cancelled ones not yet reaped.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queued_;
  }
  [[nodiscard]] std::uint64_t executed_events() const noexcept {
    return executed_;
  }

  /// Root of the deterministic randomness tree for this run.
  [[nodiscard]] const util::RngRoot& rng_root() const noexcept {
    return rng_root_;
  }

  /// Sequence assigned to the most recent schedule_at/schedule_every
  /// (undefined before the first one). The shard engine's tag plane keys
  /// its cell-locality map on this.
  [[nodiscard]] std::uint64_t last_scheduled_seq() const noexcept {
    return next_seq_ - 1;
  }
  /// The installed shard engine, if any (see src/sim/shard.hpp).
  [[nodiscard]] ShardEngine* shard_engine() const noexcept { return engine_; }

  /// Attach (or detach with nullptr) a flight recorder; every event
  /// dispatch is then recorded to the sim ring. Recording is observational
  /// only — it draws no randomness and schedules nothing.
  void set_flight_recorder(trace::FlightRecorder* rec);
  [[nodiscard]] trace::FlightRecorder* flight_recorder() const noexcept {
    return recorder_;
  }

  /// Append the event-loop state a checkpoint verifies: clock, dispatch
  /// counters, and the scheduling sequence.
  void snapshot(util::ByteWriter& w) const;

  /// Stamp util::Logger lines with this simulator's clock for the rest
  /// of its lifetime (the destructor uninstalls). One simulator at a
  /// time: installing from a second simulator replaces the first.
  void install_log_time_source();

 private:
  // ---- calendar queue (Brown 1988) ------------------------------------
  //
  // Power-of-two bucket count, power-of-two bucket width. An event lands
  // in bucket (when >> shift) & mask; each bucket is an intrusive chain
  // of slot indices sorted by (when, seq), so the chain head is the
  // bucket's minimum. The sweep cursor (cur_bucket_, cur_end_) walks the
  // table one bucket-year at a time: when the current bucket's head fires
  // inside the current year window it IS the global minimum (any earlier
  // event would hash to this very bucket). Inserts append at the tail in
  // O(1) for monotone (when, seq) arrivals — the common case — and walk
  // the chain otherwise. The table resizes (and re-estimates the bucket
  // width from the spacing of *distinct* timestamps) when occupancy
  // exceeds two events per bucket, so chains stay short at any scale.
  struct Bucket {
    std::uint32_t head = detail::kNoSlot;
    std::uint32_t tail = detail::kNoSlot;
  };

  static constexpr std::uint32_t kInitialBuckets = 1024;  // power of two
  static constexpr int kInitialShift = 10;                // ~1 us buckets
  static constexpr int kMaxShift = 40;                    // ~18 min buckets

  [[nodiscard]] static bool before(const detail::EventMeta& a,
                                   const detail::EventMeta& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  [[nodiscard]] std::uint32_t bucket_of(SimTime when) const noexcept {
    return static_cast<std::uint32_t>(
               static_cast<std::uint64_t>(when.nanoseconds()) >> shift_) &
           mask_;
  }

  void uninstall_log_time_source() noexcept;
  void chain_insert(std::uint32_t idx, detail::EventMeta& m);
  void insert_event(std::uint32_t idx, detail::EventMeta& m);
  /// Unlink the peeked head from its bucket chain (requires peek_valid_);
  /// shared by step() and the shard engine's batch collector.
  std::uint32_t pop_head() noexcept;

  // ---- shard-engine hooks (src/sim/shard.hpp) -------------------------
  // The engine pops runs of tagged same-timestamp events and replicates
  // step()'s bookkeeping with the callback-run / slot-retire halves split
  // across the batch: callbacks run on workers, everything that mutates
  // queue or arena state stays on the coordinator.
  bool engine_peek(SimTime& when, std::uint64_t& seq) {
    if (!find_min()) return false;
    const detail::EventMeta& m = arena_->meta(peek_slot_);
    when = m.when;
    seq = m.seq;
    return true;
  }
  std::uint32_t engine_pop() noexcept { return pop_head(); }
  [[nodiscard]] bool engine_cancelled(std::uint32_t slot) const noexcept {
    return (arena_->meta(slot).genflags & detail::kFlagCancelled) != 0;
  }
  [[nodiscard]] bool engine_repeating(std::uint32_t slot) const noexcept {
    return (arena_->meta(slot).genflags & detail::kFlagRepeating) != 0;
  }
  void engine_release(std::uint32_t slot) noexcept { arena_->release(slot); }
  /// Run a popped event's callback (worker threads call this; it touches
  /// only the callback slab entry, never queue state).
  void engine_run_cb(std::uint32_t slot) { arena_->cb(slot)(); }
  /// Account + recycle a batch-executed slot (coordinator, pop order).
  void engine_retire(std::uint32_t slot) noexcept {
    ++executed_;
    arena_->release(slot);
  }
  void engine_set_now(SimTime t) noexcept { now_ = t; }
  void engine_finish(SimTime limit) noexcept {
    if (limit != SimTime::max() && limit > now_) now_ = limit;
  }
  [[nodiscard]] trace::FlightRecorder* engine_recorder() const noexcept {
    return recorder_;
  }
  void engine_record_dispatch(std::uint64_t seq);
  friend class ShardEngine;
  /// Establishes the peek cache (the exact global minimum) or returns
  /// false when no events are queued.
  bool find_min();
  /// Slow path of find_min: no event fires within a full sweep year —
  /// scan every chain head directly and re-anchor the sweep there.
  void rescan_min();
  void resize_buckets(std::size_t nbuckets);

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  detail::EventArena* arena_;
  ShardEngine* engine_ = nullptr;  ///< installed by ShardEngine's ctor
  trace::FlightRecorder* recorder_ = nullptr;
  std::uint32_t trace_ring_ = 0;
  bool log_time_installed_ = false;

  std::vector<Bucket> buckets_;
  /// Occupancy bitmap over buckets_: bit (b & 63) of occupancy_[b >> 6]
  /// is set iff buckets_[b] has a chain. Sparse pending sets (a handful
  /// of events ~ms apart in a µs-wide table) are the steady state of a
  /// quiesced network sim; the bitmap lets the sweep and the direct
  /// rescan skip empty buckets 64 at a time instead of touching every
  /// chain head.
  std::vector<std::uint64_t> occupancy_;
  std::vector<std::uint32_t> resize_scratch_;
  std::uint32_t mask_ = kInitialBuckets - 1;
  int shift_ = kInitialShift;
  std::size_t queued_ = 0;
  /// Sweep cursor: cur_end_ is the exclusive upper bound (in ns, as
  /// unsigned so SimTime::max() arithmetic cannot overflow) of
  /// cur_bucket_'s current year window.
  std::uint32_t cur_bucket_ = 0;
  std::uint64_t cur_end_ = std::uint64_t{1} << kInitialShift;
  /// Memoized minimum so a step(limit) that declines to pop (head beyond
  /// the limit) doesn't pay the bucket sweep again next call.
  bool peek_valid_ = false;
  std::uint32_t peek_slot_ = detail::kNoSlot;
  std::uint32_t peek_bucket_ = 0;

  util::RngRoot rng_root_;
};

}  // namespace liteview::sim
