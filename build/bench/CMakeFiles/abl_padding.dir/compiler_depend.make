# Empty compiler generated dependencies file for abl_padding.
# This may be replaced when dependencies are built.
