// Golden-trace determinism regression — the gate that keeps spatial
// culling honest.
//
// A 40-node random deployment under a multi-fault scenario (deployment-
// wide burst loss, crashes, a jamming window, churn) is run while
// capturing a byte trace of everything observable: every transmission the
// sniffer sees (sender, channel, size, timing, payload CRC), every fault
// decision, and the medium's final counters. The suite then asserts the
// trace is byte-identical across (a) two runs with the same seed and (b)
// spatial culling on vs. force-disabled — i.e. the grid is a pure
// optimization with zero semantic surface.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/scenario.hpp"
#include "testbed/testbed.hpp"
#include "util/crc16.hpp"

namespace liteview {
namespace {

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

constexpr int kNodes = 40;
constexpr double kSideM = 55.0;       // dense: every node hears many others
constexpr double kMinSpacingM = 3.0;
constexpr std::int64_t kRunSeconds = 12;

/// The scripted pathology mix: burst loss everywhere, two crashes (one
/// rebooting), a jam window on the deployment channel, churn at the end.
const char* kScenario = R"(
burst * pgb=0.05 pbg=0.4 lossb=1.0
crash 7 at=4s for=3s
crash 19 at=6s
jam ch=17 at=8s for=400ms
churn 2,3,11,23,31 period=1500ms down=500ms until=11s
)";

std::vector<std::uint8_t> run_scenario(std::uint64_t seed,
                                       bool spatial_culling,
                                       bool gain_cache = true) {
  testbed::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.spatial_culling = spatial_culling;
  cfg.link_gain_cache = gain_cache;
  auto tb = testbed::Testbed::random_square(kNodes, kSideM, kMinSpacingM, cfg);

  std::vector<std::uint8_t> trace;
  tb->medium().set_sniffer([&trace](const phy::SniffedFrame& f) {
    append_u64(trace, f.from);
    trace.push_back(f.channel);
    append_u64(trace, f.psdu_bytes);
    append_u64(trace, static_cast<std::uint64_t>(f.start.nanoseconds()));
    append_u64(trace, static_cast<std::uint64_t>(f.airtime.nanoseconds()));
    append_u64(trace, util::crc16_ccitt(f.psdu));
  });

  const auto scenario = fault::parse_scenario(kScenario);
  EXPECT_TRUE(scenario.has_value());
  EXPECT_TRUE(tb->fault().load(*scenario));

  tb->sim().run_for(sim::SimTime::sec(kRunSeconds));

  // The scenario only bites if real traffic flowed (beacons default on).
  EXPECT_GT(tb->medium().frames_sent(), 100u);
  EXPECT_GT(tb->fault().totals().frames_dropped, 0u);

  // Fault decisions and the medium's full counter block ride at the end;
  // a culling bug that only shifted statistics would still flip these.
  const auto faults = tb->fault().trace_bytes();
  trace.insert(trace.end(), faults.begin(), faults.end());
  append_u64(trace, tb->medium().frames_sent());
  append_u64(trace, tb->medium().frames_delivered());
  append_u64(trace, tb->medium().frames_corrupted());
  append_u64(trace, tb->medium().frames_below_sensitivity());
  append_u64(trace, tb->medium().frames_missed_busy_rx());
  append_u64(trace, tb->medium().frames_missed_retune());
  append_u64(trace, tb->medium().frames_dropped_fault());
  append_u64(trace, tb->sim().executed_events());
  return trace;
}

TEST(Determinism, SameSeedSameTrace) {
  const auto t1 = run_scenario(1234, /*spatial_culling=*/true);
  const auto t2 = run_scenario(1234, /*spatial_culling=*/true);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
}

TEST(Determinism, SpatialCullingIsInvisible) {
  const auto culled = run_scenario(1234, /*spatial_culling=*/true);
  const auto unculled = run_scenario(1234, /*spatial_culling=*/false);
  ASSERT_FALSE(culled.empty());
  EXPECT_EQ(culled, unculled);
}

TEST(Determinism, GainCacheIsInvisible) {
  // The memoized per-link gain plane must be exact: cached and directly
  // recomputed path loss are the same doubles, and no RNG stream is
  // involved in serving a hit — so the full multi-fault trace, counters
  // included, is byte-identical with the cache on vs. forced off.
  const auto cached = run_scenario(1234, /*spatial_culling=*/true,
                                   /*gain_cache=*/true);
  const auto direct = run_scenario(1234, /*spatial_culling=*/true,
                                   /*gain_cache=*/false);
  ASSERT_FALSE(cached.empty());
  EXPECT_EQ(cached, direct);
}

TEST(Determinism, GainCacheAndCullingComposeInvisibly) {
  // Both optimizations off together — the fully naive O(n) recomputing
  // medium — against both on (the production configuration).
  const auto fast = run_scenario(1234, /*spatial_culling=*/true,
                                 /*gain_cache=*/true);
  const auto naive = run_scenario(1234, /*spatial_culling=*/false,
                                  /*gain_cache=*/false);
  ASSERT_FALSE(fast.empty());
  EXPECT_EQ(fast, naive);
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  // Sanity: the trace actually depends on the randomness it claims to
  // capture (otherwise the two tests above would pass vacuously).
  const auto t1 = run_scenario(1234, /*spatial_culling=*/true);
  const auto t2 = run_scenario(5678, /*spatial_culling=*/true);
  EXPECT_NE(t1, t2);
}

}  // namespace
}  // namespace liteview
