// Cross-module integration scenarios: the paper's deployment-diagnosis
// workflows end to end, including determinism and failure injection.
#include <gtest/gtest.h>

#include <thread>

#include "testbed/testbed.hpp"

namespace liteview {
namespace {

TEST(Integration, DeterministicRunsBitForBit) {
  auto run_once = [] {
    auto tb = testbed::Testbed::paper_line(5, 9);
    tb->warm_up();
    auto& sh = tb->shell();
    sh.cd("192.168.0.1");
    std::string out = sh.execute("ping 192.168.0.2 round=2 length=32");
    out += sh.execute("traceroute 192.168.0.5 round=1 length=32 port=10");
    out += sh.execute("ps");
    return out;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Integration, ParallelReplicationsAreIndependent) {
  // Shared-nothing Monte-Carlo replication across threads: each thread
  // owns its Simulator; results must equal the sequential baseline.
  auto run_seeded = [](std::uint64_t seed) {
    auto tb = testbed::Testbed::paper_line(3, seed);
    tb->warm_up();
    auto& sh = tb->shell();
    sh.cd("192.168.0.1");
    return sh.execute("ping 192.168.0.2 round=1 length=32");
  };
  const auto base1 = run_seeded(1);
  const auto base2 = run_seeded(2);

  std::string t1_out, t2_out;
  std::thread t1([&] { t1_out = run_seeded(1); });
  std::thread t2([&] { t2_out = run_seeded(2); });
  t1.join();
  t2.join();
  EXPECT_EQ(t1_out, base1);
  EXPECT_EQ(t2_out, base2);
  EXPECT_NE(base1, base2);  // different seeds differ somewhere
}

TEST(Integration, BlacklistDivertsGeographicRoute) {
  // The paper's motivating workflow: identify a suspect node, blacklist
  // it, observe the route change immediately.
  auto tb = testbed::Testbed::paper_grid(3, 3, 12);
  tb->warm_up();
  // Route 1 (corner) → 9 (opposite corner); the greedy route crosses the
  // center node 5.
  const auto first = tb->geographic(0)->next_hop(9);
  ASSERT_TRUE(first.has_value());
  // Blacklist whatever the first hop is; the route must change or die,
  // and after un-blacklisting it must come back.
  tb->node(0).neighbors().set_blacklisted(*first, true);
  const auto second = tb->geographic(0)->next_hop(9);
  if (second.has_value()) EXPECT_NE(*second, *first);
  tb->node(0).neighbors().set_blacklisted(*first, false);
  EXPECT_EQ(tb->geographic(0)->next_hop(9), first);
}

TEST(Integration, TracerouteDiagnosesBrokenLink) {
  // Break a mid-path link; traceroute localizes the failure at exactly
  // that hop — the paper's headline use case.
  auto tb = testbed::Testbed::paper_line(6, 2);
  tb->warm_up();
  tb->medium().set_drop_filter([&](phy::RadioId from, phy::RadioId to) {
    const auto r4 = tb->node(3).mac().radio_id();
    const auto r5 = tb->node(4).mac().radio_id();
    return (from == r4 && to == r5) || (from == r5 && to == r4);
  });
  auto& sh = tb->shell();
  sh.cd("192.168.0.1");
  const auto out =
      sh.execute("traceroute 192.168.0.6 round=1 length=32 port=10");
  SCOPED_TRACE(out);
  EXPECT_NE(out.find("Reply from 192.168.0.4"), std::string::npos);
  EXPECT_NE(out.find("No reply for hop 4 (from 192.168.0.4)"),
            std::string::npos);
  EXPECT_EQ(out.find("Reply from 192.168.0.6"), std::string::npos);
}

TEST(Integration, AsymmetricLinkVisibleInPing) {
  // Fwd and bwd measurements of one link differ persistently — the
  // asymmetry diagnosis the paper motivates (Fig. 6's two series).
  auto tb = testbed::Testbed::paper_line(2, 2);
  tb->warm_up();
  const auto fwd = tb->medium().mean_rx_power_dbm(
      tb->node(0).mac().radio_id(), tb->node(1).mac().radio_id(),
      phy::pa_level_to_dbm(10));
  const auto bwd = tb->medium().mean_rx_power_dbm(
      tb->node(1).mac().radio_id(), tb->node(0).mac().radio_id(),
      phy::pa_level_to_dbm(10));
  EXPECT_NE(fwd, bwd);

  auto& sh = tb->shell();
  sh.cd("192.168.0.1");
  const auto run = tb->workstation().ping(1, "192.168.0.2 round=4", 4);
  ASSERT_TRUE(run.result.has_value());
  // Mean reported RSSI fwd/bwd should preserve the sign of the true
  // asymmetry (each sample has ±1 dB fading and integer rounding).
  double f = 0, b = 0;
  int n = 0;
  for (const auto& rd : run.result->rounds_data) {
    if (!rd.received) continue;
    f += rd.rssi_fwd;
    b += rd.rssi_bwd;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_EQ(f / n > b / n, fwd > bwd);
}

TEST(Integration, PowerIncreaseRaisesReportedRssi) {
  // The deployment-tuning loop: bump TX power, re-probe, see the effect
  // "within a few seconds" (paper Sec. V-B).
  auto tb = testbed::Testbed::paper_line(2, 3);
  tb->warm_up();
  auto& ws = tb->workstation();
  const auto low = ws.ping(1, "192.168.0.2 round=3", 3);
  ASSERT_TRUE(low.result.has_value());

  // Raise both ends to PA 25 via management commands.
  ASSERT_TRUE(ws.radio_set_power(1, 25).has_value());
  ws.move_near(tb->node(1).position());
  ASSERT_TRUE(ws.radio_set_power(2, 25).has_value());
  ws.move_near(tb->node(0).position());

  const auto high = ws.ping(1, "192.168.0.2 round=3", 3);
  ASSERT_TRUE(high.result.has_value());

  auto mean_rssi = [](const lv::PingResultMsg& r) {
    double s = 0;
    int n = 0;
    for (const auto& rd : r.rounds_data) {
      if (rd.received) {
        s += rd.rssi_fwd;
        ++n;
      }
    }
    return n ? s / n : -128.0;
  };
  // PA 10 → 25 is ~9 dB in the CC2420 table.
  EXPECT_GT(mean_rssi(*high.result), mean_rssi(*low.result) + 5.0);
}

TEST(Integration, ChannelMigrationWorkflow) {
  // Move a whole 2-node deployment to another channel via the shell,
  // then verify the pair still communicates there.
  auto tb = testbed::Testbed::paper_line(2, 4);
  tb->warm_up();
  auto& sh = tb->shell();
  // Farthest node first, or we saw off the branch we're sitting on.
  ASSERT_TRUE(sh.cd("192.168.0.2"));
  EXPECT_NE(sh.execute("channel 21").find("channel set to 21"),
            std::string::npos);
  ASSERT_TRUE(sh.cd("192.168.0.1"));
  EXPECT_NE(sh.execute("channel 21").find("channel set to 21"),
            std::string::npos);
  // Workstation follows.
  tb->workstation().node().set_channel(21);
  tb->sim().run_for(sim::SimTime::sec(1));
  EXPECT_EQ(tb->node(0).channel(), 21);
  EXPECT_EQ(tb->node(1).channel(), 21);
  const auto out = sh.execute("ping 192.168.0.2 round=1 length=32");
  SCOPED_TRACE(out);
  EXPECT_NE(out.find("Received = 1"), std::string::npos);
  EXPECT_NE(out.find("Channel = 21"), std::string::npos);
}

TEST(Integration, PingOverTreeRoutingProtocolIndependence) {
  // The same ping binary runs over tree routing by switching the port
  // parameter — no recompilation (paper Sec. IV-A1).
  testbed::TestbedConfig cfg = testbed::Testbed::paper_config(6);
  cfg.with_tree = true;
  cfg.tree_root = 1;
  auto tb = testbed::Testbed::surveyed_line(4, cfg);
  tb->warm_up();
  tb->sim().run_for(sim::SimTime::sec(4));  // extra tree convergence

  // Node 4 pings the root over the tree (port 12).
  lv::PingParams p;
  p.dst = 1;
  p.rounds = 1;
  p.routing_port = net::kPortTree;
  p.round_timeout = sim::SimTime::ms(900);
  bool done = false;
  bool received = false;
  std::size_t hops = 0;
  tb->suite(3).ping().run(p, [&](const lv::PingResultMsg& r) {
    done = true;
    received = r.rounds_data[0].received;
    hops = r.rounds_data[0].hops_fwd.size();
  });
  tb->sim().run_for(sim::SimTime::sec(3));
  ASSERT_TRUE(done);
  EXPECT_TRUE(received);
  EXPECT_EQ(hops, 3u);  // 4 → 3 → 2 → 1 along the tree
}

TEST(Integration, BeaconFrequencyUpdateSlowsDiscovery) {
  // `update period=...` is how the paper freezes neighbor tables before
  // toggling power; verify the knob actually changes beacon traffic.
  auto tb = testbed::Testbed::paper_line(2, 5);
  tb->warm_up();
  auto& ws = tb->workstation();
  ASSERT_TRUE(ws.nbr_update(1, 60'000).has_value());
  ws.move_near(tb->node(1).position());
  ASSERT_TRUE(ws.nbr_update(2, 60'000).has_value());

  tb->accounting().reset();
  tb->sim().run_for(sim::SimTime::sec(10));
  const auto beacons =
      tb->accounting().for_port(net::kPortBeacon).packets;
  // Two nodes at one beacon per minute: at most one beacon each in 10 s.
  EXPECT_LE(beacons, 2u);
}

TEST(Integration, ThirtyNodeGridBringUp) {
  // Paper-scale deployment: 30 MicaZ nodes. Bring up a 5×6 grid, warm
  // up, and check every node discovered at least two neighbors.
  testbed::TestbedConfig cfg = testbed::Testbed::paper_config(21);
  auto tb = testbed::Testbed::grid(5, 6, testbed::Testbed::paper_spacing_m(),
                                   cfg);
  tb->warm_up();
  tb->sim().run_for(sim::SimTime::sec(4));
  for (std::size_t i = 0; i < tb->size(); ++i) {
    EXPECT_GE(tb->node(i).neighbors().size(), 2u) << "node " << i + 1;
  }
}

}  // namespace
}  // namespace liteview
