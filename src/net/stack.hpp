// The subscription-based communication stack of paper Fig. 2.
//
// Threads (protocols, LiteView commands, applications) subscribe to ports.
// Incoming frames pass the CRC checker (in the MAC), the header analyzer
// (packet decode), and port matching; the matching subscriber's handler
// runs with the packet plus the receiver-side link measurements. The
// design gives "complete isolation between the protocol implementation
// and the applications: the only shared data between layers are packets
// themselves."
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mac/csma.hpp"
#include "net/packet.hpp"

namespace liteview::trace {
class FlightRecorder;
}

namespace liteview::net {

/// Link-layer context delivered with each packet: who relayed it to us
/// (the MAC source — distinct from the packet's origin) and the PHY
/// measurements of that last hop.
struct LinkContext {
  mac::ShortAddr link_src = 0;
  phy::RxInfo rx;
  bool local = false;  ///< true for loopback deliveries (no radio, no rx)
};

struct StackStats {
  std::uint64_t delivered = 0;
  std::uint64_t local_delivered = 0;
  std::uint64_t no_subscriber = 0;
  std::uint64_t malformed = 0;
};

class CommStack {
 public:
  using Handler = std::function<void(const NetPacket&, const LinkContext&)>;
  using SendCallback = mac::CsmaMac::SendCallback;

  explicit CommStack(sim::Simulator& sim, mac::CsmaMac& mac);

  CommStack(const CommStack&) = delete;
  CommStack& operator=(const CommStack&) = delete;

  /// Subscribe a handler to a port. Returns false when the port is taken
  /// (one listening thread per port, as in LiteOS).
  bool subscribe(Port port, Handler handler);
  void unsubscribe(Port port);
  [[nodiscard]] bool subscribed(Port port) const {
    return handlers_.contains(port);
  }

  /// Send one link-layer hop to `next_hop` (kBroadcast for local
  /// broadcast). The packet's src/dst/port are preserved end-to-end.
  bool send_link(mac::ShortAddr next_hop, const NetPacket& packet,
                 SendCallback cb = {});

  /// Loopback ("Localhost packet" in Fig. 2): deliver to this node's own
  /// subscriber without touching the radio, after one event-loop hop.
  void send_local(NetPacket packet);

  [[nodiscard]] mac::CsmaMac& mac() noexcept { return mac_; }
  [[nodiscard]] const StackStats& stats() const noexcept { return stats_; }
  [[nodiscard]] mac::ShortAddr address() const noexcept {
    return mac_.address();
  }

  /// Attach (or detach with nullptr) a flight recorder: port sends and
  /// deliveries flow into this node's net ring.
  void set_flight_recorder(trace::FlightRecorder* rec);

  /// Append the stack state a checkpoint verifies.
  void snapshot(util::ByteWriter& w) const;

 private:
  void on_mac_frame(const mac::MacFrame& frame, const phy::RxInfo& info);

  sim::Simulator& sim_;
  mac::CsmaMac& mac_;
  std::unordered_map<Port, Handler> handlers_;
  StackStats stats_;
  trace::FlightRecorder* recorder_ = nullptr;
  std::uint32_t trace_ring_ = 0;
};

}  // namespace liteview::net
