// Reproduces paper Sec. V-A's in-text claim: "Both the neighborhood
// management and the single-hop ping command have a response delay of
// 500 milliseconds, which is consistent with most other commands in
// LiteOS. This period of time is intentionally longer than needed ...
// extra waiting time to allow nodes to add random waiting time before
// sending back replies."
//
// We measure (a) the fixed command response delay seen by the user, and
// (b) the actual network time the reply needed, to show the budget slack.
#include <cstdio>

#include "bench/common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace liteview;

struct RunResult {
  double nbr_cmd_ms = 0;    // user-visible command time, neighbor list
  double radio_cmd_ms = 0;  // user-visible command time, radio get
  bool nbr_ok = false;
  bool radio_ok = false;
};

RunResult run_once(std::uint64_t seed) {
  auto tb = testbed::Testbed::paper_line(3, seed);
  tb->warm_up();
  RunResult out;

  auto t0 = tb->sim().now();
  out.nbr_ok = tb->workstation().nbr_list(1, true).has_value();
  out.nbr_cmd_ms = (tb->sim().now() - t0).milliseconds();

  t0 = tb->sim().now();
  out.radio_ok = tb->workstation().radio_get(1).has_value();
  out.radio_cmd_ms = (tb->sim().now() - t0).milliseconds();
  return out;
}

}  // namespace

int main() {
  bench::header(
      "Sec. V-A — Fixed 500 ms response delay of single-hop commands");

  constexpr int kReps = 8;
  const auto runs = bench::replicate<RunResult>(kReps, 11, run_once);

  util::RunningStats nbr, radio;
  int ok = 0;
  for (const auto& r : runs) {
    nbr.add(r.nbr_cmd_ms);
    radio.add(r.radio_cmd_ms);
    if (r.nbr_ok && r.radio_ok) ++ok;
  }

  std::printf("\nneighbor-list command : %.1f ms (all %zu runs)\n",
              nbr.mean(), nbr.count());
  std::printf("radio-config command  : %.1f ms (all %zu runs)\n",
              radio.mean(), radio.count());
  std::printf("success rate          : %d/%d\n", ok, kReps);
  std::printf(
      "\nThe budget absorbs the nodes' random response backoff "
      "(20..300 ms)\nplus the reliable-protocol exchange; the user always "
      "waits the full window.\n");

  bench::section("paper vs. measured");
  bench::compare_row("neighborhood mgmt response delay", "500 ms",
                     util::format("%.0f ms (fixed)", nbr.mean()));
  bench::compare_row("single-hop command response delay", "500 ms",
                     util::format("%.0f ms (fixed)", radio.mean()));
  return 0;
}
