#include "phy/ber.hpp"

#include <algorithm>
#include <cmath>

#include "phy/units.hpp"
#include "util/simd.hpp"

namespace liteview::phy {

// The dB and linear entry points carry the same 16-ary orthogonal
// modulation sum. They are deliberately separate function bodies — not a
// wrapper — so the dB path's codegen (the BM_PerEvaluation host anchor
// that benchmark normalization divides by) stays exactly what it has
// always been. Keep the two loops in lockstep; the Ber suite pins
// per_oqpsk(db, b) == per_oqpsk_lin(db_to_linear(db), b) bit-for-bit.

namespace {

/// Binomial coefficients C(16, k) for k = 2..16.
constexpr double kBinom[15] = {120,   560,  1820, 4368, 8008,
                               11440, 12870, 11440, 8008, 4368,
                               1820,  560,  120,  16,   1};

}  // namespace

double ber_oqpsk(double sinr_db) noexcept {
  const double sinr = units::db_to_linear(sinr_db);
  double acc = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    acc += sign * kBinom[k - 2] * std::exp(20.0 * sinr * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
  if (ber < 0.0) return 0.0;
  if (ber > 0.5) return 0.5;
  return ber;
}

double per_oqpsk(double sinr_db, int bits) noexcept {
  if (bits <= 0) return 0.0;
  const double ber = ber_oqpsk(sinr_db);
  if (ber <= 0.0) return 0.0;
  // log1p for numerical stability at tiny BER.
  const double log_success = static_cast<double>(bits) * std::log1p(-ber);
  return 1.0 - std::exp(log_success);
}

double ber_oqpsk_lin(double sinr_lin) noexcept {
  double acc = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    acc += sign * kBinom[k - 2] * std::exp(20.0 * sinr_lin * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
  if (ber < 0.0) return 0.0;
  if (ber > 0.5) return 0.5;
  return ber;
}

double per_oqpsk_lin(double sinr_lin, int bits) noexcept {
  if (bits <= 0) return 0.0;
  const double ber = ber_oqpsk_lin(sinr_lin);
  if (ber <= 0.0) return 0.0;
  const double log_success = static_cast<double>(bits) * std::log1p(-ber);
  return 1.0 - std::exp(log_success);
}

namespace {

/// (-1)^k C(16, k) for k = 2..16 — the binomial weights with their
/// alternating signs folded in (sign * C is an exact integer product).
constexpr double kSignedBinom[15] = {120,   -560,  1820,  -4368, 8008,
                                     -11440, 12870, -11440, 8008,  -4368,
                                     1820,  -560,  120,   -16,   1};

/// exp(20·s·(1/k - 1)) routed through the 10^(x/10) kernel:
/// e^y = 10^((y·10/ln10)/10), so the per-term argument is
/// s · [20·(1/k - 1)·(10/ln10)], with the bracket folded at compile time.
constexpr double kTenOverLn10 = 4.342944819032518;
constexpr double exp_slope(int k) {
  return 20.0 * (1.0 / k - 1.0) * kTenOverLn10;
}
constexpr double kExpSlopeDb[15] = {
    exp_slope(2),  exp_slope(3),  exp_slope(4),  exp_slope(5),  exp_slope(6),
    exp_slope(7),  exp_slope(8),  exp_slope(9),  exp_slope(10), exp_slope(11),
    exp_slope(12), exp_slope(13), exp_slope(14), exp_slope(15), exp_slope(16)};

}  // namespace

void per_oqpsk_lin_batch(const double* sinr_lin, int bits, double* per,
                         std::size_t n, bool vec) noexcept {
  if (bits <= 0) {
    for (std::size_t i = 0; i < n; ++i) per[i] = 0.0;
    return;
  }
  // Stack chunks keep the path allocation-free; the exponential kernel is
  // element-wise, so chunking cannot change any value. 8 receptions x 15
  // terms vectorizes the batch kernel at full width.
  constexpr std::size_t kChunk = 8;
  constexpr std::size_t kTerms = 15;
  double args[kChunk * kTerms];
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    for (std::size_t e = 0; e < m; ++e) {
      const double s = sinr_lin[base + e];
      for (std::size_t j = 0; j < kTerms; ++j) {
        args[e * kTerms + j] = s * kExpSlopeDb[j];
      }
    }
    util::simd::db_to_linear_batch(args, args, m * kTerms, vec);
    for (std::size_t e = 0; e < m; ++e) {
      double acc = 0.0;
      for (std::size_t j = 0; j < kTerms; ++j) {
        acc += kSignedBinom[j] * args[e * kTerms + j];
      }
      double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
      if (ber > 0.5) ber = 0.5;
      if (ber <= 0.0) {
        per[base + e] = 0.0;
        continue;
      }
      // libm finish on both paths — scalar code either way, so it keeps
      // the scalar/SIMD bit-exactness of the batch.
      const double log_success =
          static_cast<double>(bits) * std::log1p(-ber);
      per[base + e] = 1.0 - std::exp(log_success);
    }
  }
}

}  // namespace liteview::phy
