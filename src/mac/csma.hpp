// Unslotted CSMA-CA MAC with a bounded transmit queue.
//
// This is the "MAC Component" of the paper's Fig. 2: channel polling
// (CCA), random exponential backoff, packet sender, and the CRC-checked
// receive path that hands decoded frames upward. Its queueing-plus-jitter
// behavior under a busy channel is what produces the paper's Fig. 5
// back-to-back report arrivals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mac/frame.hpp"
#include "phy/energy.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace liteview::trace {
class FlightRecorder;
}

namespace liteview::mac {

struct MacConfig {
  std::uint8_t min_be = 2;            ///< initial backoff exponent
  std::uint8_t max_be = 5;            ///< backoff exponent cap
  std::uint8_t max_csma_backoffs = 4; ///< CCA failures before dropping
  std::size_t queue_capacity = 8;     ///< TX queue slots
  /// Software processing delay between frame arrival and upper-layer
  /// dispatch (interrupt + copy into the subscriber's buffer).
  sim::SimTime rx_proc_delay = sim::SimTime::us(100);
  /// Delay between dequeue and first backoff draw (driver overhead).
  sim::SimTime tx_proc_delay = sim::SimTime::us(50);
  /// CCA busy threshold. Sensor stacks use noise-floor-tracking CCA
  /// (B-MAC), far more sensitive than the CC2420 register default; this
  /// is what lets CSMA coordinate the low-power links sensor nets use.
  double cca_threshold_dbm = -90.0;
};

/// Per-MAC statistics, readable by tests and benches.
struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t sent = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t dropped_channel_busy = 0;
  std::uint64_t rx_crc_failures = 0;
  std::uint64_t rx_delivered = 0;
  std::uint64_t rx_filtered = 0;  ///< frames addressed elsewhere
  std::uint64_t cca_busy = 0;
  std::uint64_t dropped_radio_off = 0;  ///< frames lost to a power-down
};

class CsmaMac final : public phy::MediumClient {
 public:
  /// Completion callback: true = transmitted, false = dropped.
  using SendCallback = std::function<void(bool)>;
  using RxHandler =
      std::function<void(const MacFrame&, const phy::RxInfo&)>;

  CsmaMac(sim::Simulator& sim, phy::Medium& medium, ShortAddr address,
          phy::Position pos, const MacConfig& cfg = {});
  ~CsmaMac() override;

  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  /// Enqueue a frame. Returns false (and drops) when the queue is full.
  /// (std::vector arguments convert: the bytes are copied into the
  /// frame's inline payload, which is cheaper than the old vector move
  /// plus its eventual free.)
  bool send(ShortAddr dst, FramePayload payload, SendCallback cb = {});

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  /// Promiscuous tap: sees every CRC-valid frame regardless of address.
  void set_promiscuous_handler(RxHandler handler) {
    promiscuous_ = std::move(handler);
  }

  // ---- radio control (the paper's "Radio Configurations" group) -------
  /// Power the radio down/up (node crash/reboot in the fault plane).
  /// Disabling purges the TX queue — in-flight commands are lost exactly
  /// as on a real mote losing power — and makes the receive path deaf.
  void set_radio_enabled(bool enabled);
  [[nodiscard]] bool radio_enabled() const noexcept { return enabled_; }
  void set_pa_level(phy::PaLevel level) noexcept { pa_level_ = level; }
  [[nodiscard]] phy::PaLevel pa_level() const noexcept { return pa_level_; }
  void set_channel(phy::Channel ch);
  [[nodiscard]] phy::Channel channel() const;
  /// Relocate the radio (deployment adjustments, mobile workstation).
  void set_position(phy::Position pos);
  /// Instantaneous in-band energy on the current channel (dBm) — the
  /// RSSI-sampling primitive behind the channel-survey command.
  [[nodiscard]] double sample_channel_power_dbm() const {
    return medium_.channel_power_dbm(radio_);
  }

  [[nodiscard]] ShortAddr address() const noexcept { return address_; }
  [[nodiscard]] phy::RadioId radio_id() const noexcept { return radio_; }

  /// Radio energy accounting (TX split out; listening otherwise).
  [[nodiscard]] const phy::EnergyMeter& energy() const noexcept {
    return energy_;
  }
  [[nodiscard]] sim::SimTime energy_since() const noexcept {
    return created_;
  }
  /// Occupied TX queue slots (the in-flight head stays queued until its
  /// transmission completes) — what ping's "Queue = x/y" field reports.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] const MacStats& stats() const noexcept { return stats_; }

  /// Attach (or detach with nullptr) a flight recorder: backoff draws,
  /// transmissions, and drops flow into this MAC's ring.
  void set_flight_recorder(trace::FlightRecorder* rec);

  /// Append the MAC state a checkpoint verifies: stats, queue/radio
  /// state, and the backoff RNG stream.
  void snapshot(util::ByteWriter& w) const;

  // MediumClient:
  void on_frame(const std::vector<std::uint8_t>& psdu,
                const phy::RxInfo& info) override;

 private:
  struct Pending {
    MacFrame frame;
    SendCallback cb;
  };
  /// Fixed-capacity ring over the bounded TX queue. push/pop recycle the
  /// same slots forever, keeping steady-state queueing off the heap — a
  /// std::deque here block-cycled a fresh allocation every couple of
  /// frames (tests/test_alloc.cpp holds the zero-alloc line).
  class TxQueue {
   public:
    explicit TxQueue(std::size_t capacity) : slots_(capacity) {}
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] Pending& front() noexcept { return slots_[head_]; }
    [[nodiscard]] Pending& back() noexcept { return slots_[index(count_ - 1)]; }
    void push_back(Pending&& p) { slots_[index(count_++)] = std::move(p); }
    void pop_front() {
      slots_[head_] = Pending{};  // release the payload/capture now
      head_ = index(1);
      --count_;
    }
    void pop_back() { slots_[index(--count_)] = Pending{}; }

   private:
    [[nodiscard]] std::size_t index(std::size_t i) const noexcept {
      return (head_ + i) % slots_.size();
    }
    std::vector<Pending> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };
  /// A received frame parked between arrival and the rx_proc_delay
  /// dispatch event. Pooled (free-list reuse, stable addresses) so the
  /// receive path stays heap-free in steady state.
  struct RxPending {
    MacFrame frame;
    phy::RxInfo rx;
  };

  void maybe_start();
  void csma_attempt(std::uint8_t nb, std::uint8_t be);
  void transmit_head();
  void finish_head(bool ok);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  ShortAddr address_;
  MacConfig cfg_;
  phy::RadioId radio_;
  phy::PaLevel pa_level_ = phy::kDefaultPaLevel;

  util::RngStream backoff_rng_;
  phy::EnergyMeter energy_;
  sim::SimTime created_;
  TxQueue queue_;
  std::vector<std::unique_ptr<RxPending>> rx_slots_;
  std::vector<std::uint32_t> rx_free_;
  bool busy_ = false;          ///< head-of-line frame in CSMA or on air
  bool enabled_ = true;        ///< radio powered (false while crashed)
  std::uint8_t next_seq_ = 0;
  RxHandler rx_handler_;
  RxHandler promiscuous_;
  MacStats stats_;
  trace::FlightRecorder* recorder_ = nullptr;
  std::uint32_t trace_ring_ = 0;
};

}  // namespace liteview::mac
