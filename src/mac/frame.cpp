#include "mac/frame.hpp"

#include "util/bytes.hpp"
#include "util/crc16.hpp"

namespace liteview::mac {

std::vector<std::uint8_t> encode_frame(const MacFrame& f) {
  util::ByteWriter w(kMacOverheadBytes + f.payload.size());
  w.u16(kDataFcf);
  w.u8(f.seq);
  w.u16(f.dst);
  w.u16(f.src);
  w.bytes(f.payload);
  const std::uint16_t fcs = util::crc16_ccitt(w.data());
  w.u16(fcs);
  return std::move(w).take();
}

std::optional<MacFrame> decode_frame(std::span<const std::uint8_t> mpdu) {
  if (mpdu.size() < kMacOverheadBytes) return std::nullopt;
  const auto body = mpdu.first(mpdu.size() - kFcsBytes);
  util::ByteReader fcs_reader(mpdu.subspan(mpdu.size() - kFcsBytes));
  const std::uint16_t fcs = fcs_reader.u16();
  if (util::crc16_ccitt(body) != fcs) return std::nullopt;

  util::ByteReader r(body);
  MacFrame f;
  const std::uint16_t fcf = r.u16();
  if (fcf != kDataFcf) return std::nullopt;
  f.seq = r.u8();
  f.dst = r.u16();
  f.src = r.u16();
  const auto rest = r.rest();
  f.payload.assign(rest.begin(), rest.end());
  return f;
}

}  // namespace liteview::mac
