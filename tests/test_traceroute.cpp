// Tests for the traceroute command: per-hop task cascade (paper Fig. 4),
// report streaming, failure reporting, protocol independence.
#include <gtest/gtest.h>

#include "liteview/traceroute.hpp"
#include "testbed/testbed.hpp"

namespace liteview::lv {
namespace {

struct TrFixture : ::testing::Test {
  void make(int n, std::uint64_t seed = 2) {
    tb = testbed::Testbed::paper_line(n, seed);
    tb->warm_up();
  }
  struct Run {
    std::vector<TracerouteReportMsg> reports;
    std::optional<TracerouteDoneMsg> done;
  };
  Run run_traceroute(std::size_t node_idx, TracerouteParams p) {
    Run out;
    tb->suite(node_idx).traceroute().run(
        p,
        [&](const TracerouteReportMsg& r) { out.reports.push_back(r); },
        [&](const TracerouteDoneMsg& d) { out.done = d; });
    tb->sim().run_for(p.total_timeout + sim::SimTime::sec(1));
    return out;
  }
  std::unique_ptr<testbed::Testbed> tb;
};

TEST(TrParams, FullSyntax) {
  kernel::AddressBook book;
  book.add("192.168.0.3", 3);
  const auto p =
      parse_traceroute_params("192.168.0.3 round=1 length=32 port=10", &book);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->dst, 3);
  EXPECT_EQ(p->rounds, 1);
  EXPECT_EQ(p->length, 32);
  EXPECT_EQ(p->routing_port, 10);
}

TEST(TrParams, DefaultPortIsGeographic) {
  const auto p = parse_traceroute_params("5", nullptr);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->routing_port, net::kPortGeographic);
}

TEST(TrParams, RejectsBadInput) {
  EXPECT_FALSE(parse_traceroute_params("", nullptr).has_value());
  EXPECT_FALSE(parse_traceroute_params("5 port=300", nullptr).has_value());
  EXPECT_FALSE(parse_traceroute_params("5 length=65", nullptr).has_value());
}

TEST_F(TrFixture, EveryHopReportsOnCleanPath) {
  make(5, 2);
  TracerouteParams p;
  p.dst = 5;
  const auto run = run_traceroute(0, p);
  ASSERT_TRUE(run.done.has_value());
  ASSERT_EQ(run.reports.size(), 4u);
  // Hop k's report names node k+2 as its far end ("Reply from ...").
  for (std::size_t k = 0; k < run.reports.size(); ++k) {
    const auto& r = run.reports[k];
    EXPECT_TRUE(r.reached);
    EXPECT_EQ(r.prober, static_cast<net::Addr>(k + 1));
    EXPECT_EQ(r.next, static_cast<net::Addr>(k + 2));
    EXPECT_EQ(r.hop_index, static_cast<std::uint8_t>(k));
    EXPECT_GT(r.rtt_us, 1'000u);
    EXPECT_LT(r.rtt_us, 50'000u);
    EXPECT_GE(r.lqi_fwd, 50);
    EXPECT_GE(r.lqi_bwd, 50);
  }
  EXPECT_TRUE(run.reports.back().is_final);
  EXPECT_EQ(run.done->protocol_name, "geographic forwarding");
  EXPECT_EQ(run.done->received, 4);
}

TEST_F(TrFixture, PerHopRttsAreSingleLink) {
  // The paper stresses traceroute RTTs are per-hop, not end-to-end: hop
  // RTTs on an 8-hop path stay in the single-link range.
  make(9, 2);
  TracerouteParams p;
  p.dst = 9;
  const auto run = run_traceroute(0, p);
  for (const auto& r : run.reports) {
    if (r.reached) EXPECT_LT(r.rtt_us, 60'000u) << "hop " << int(r.hop_index);
  }
  ASSERT_GE(run.reports.size(), 6u);  // most of 8 hops reported
}

TEST_F(TrFixture, DeadEndReportsUnreached) {
  make(3, 2);
  // Sever the 2→3 link in both directions: the trace dead-ends at hop 2.
  tb->medium().set_drop_filter([&](phy::RadioId from, phy::RadioId to) {
    const auto r2 = tb->node(1).mac().radio_id();
    const auto r3 = tb->node(2).mac().radio_id();
    return (from == r2 && to == r3) || (from == r3 && to == r2);
  });
  TracerouteParams p;
  p.dst = 3;
  p.hop_timeout = sim::SimTime::ms(150);
  const auto run = run_traceroute(0, p);
  ASSERT_GE(run.reports.size(), 2u);
  EXPECT_TRUE(run.reports[0].reached);   // 1 → 2 fine
  EXPECT_FALSE(run.reports[1].reached);  // 2 → 3 dead
  ASSERT_TRUE(run.done.has_value());
}

TEST_F(TrFixture, NoRouteReportsImmediately) {
  make(2, 2);
  TracerouteParams p;
  p.dst = 77;  // unknown: geographic forwarding has no position for it
  p.total_timeout = sim::SimTime::sec(2);
  const auto run = run_traceroute(0, p);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_FALSE(run.reports[0].reached);
  EXPECT_EQ(run.reports[0].prober, 1);
}

TEST_F(TrFixture, ReportsStreamInAscendingHopOrderMostly) {
  make(9, 4);
  TracerouteParams p;
  p.dst = 9;
  const auto run = run_traceroute(0, p);
  ASSERT_GE(run.reports.size(), 6u);
  // Hop 0's local report must be first; later reports may reorder only
  // slightly (queueing), mirroring the paper's Fig. 5 discussion.
  EXPECT_EQ(run.reports.front().hop_index, 0);
}

TEST_F(TrFixture, TracerouteToDirectNeighborIsOneHop) {
  make(3, 2);
  TracerouteParams p;
  p.dst = 2;
  const auto run = run_traceroute(0, p);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_TRUE(run.reports[0].is_final);
  EXPECT_EQ(run.reports[0].next, 2);
  ASSERT_TRUE(run.done.has_value());
  EXPECT_EQ(run.done->hops, 1);
}

TEST_F(TrFixture, ConcurrentTracesFromDifferentSources) {
  make(5, 5);
  Run a, b;
  TracerouteParams p;
  p.dst = 5;
  tb->suite(0).traceroute().run(
      p, [&](const TracerouteReportMsg& r) { a.reports.push_back(r); },
      [&](const TracerouteDoneMsg& d) { a.done = d; });
  TracerouteParams q;
  q.dst = 1;
  tb->suite(4).traceroute().run(
      q, [&](const TracerouteReportMsg& r) { b.reports.push_back(r); },
      [&](const TracerouteDoneMsg& d) { b.done = d; });
  tb->sim().run_for(sim::SimTime::sec(8));
  ASSERT_TRUE(a.done.has_value());
  ASSERT_TRUE(b.done.has_value());
  // Both traces make progress despite contending for the same channel.
  EXPECT_GE(a.reports.size() + b.reports.size(), 5u);
}

}  // namespace
}  // namespace liteview::lv
