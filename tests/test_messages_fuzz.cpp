// Randomized round-trip + adversarial-input fuzzing for the management
// message codecs. Two properties per message type:
//
//   1. decode(encode(m)) == m for randomized field values, including
//      boundary sizes (empty strings/vectors, max counts).
//   2. Every decoder survives arbitrary byte soup — 10k seeded-random
//      buffers per decoder must return nullopt or a value, never crash,
//      read out of bounds, or trip UB. Run under the `asan` preset
//      (ASan+UBSan) this is the codec's memory-safety gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "liteview/messages.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace liteview::lv {
namespace {

// -- randomized value generators ----------------------------------------

struct Gen {
  explicit Gen(std::uint64_t seed) : rng(seed) {}
  std::mt19937_64 rng;

  std::uint8_t u8() { return static_cast<std::uint8_t>(rng()); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(rng()); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(rng()); }
  std::uint64_t u64() { return rng(); }
  std::int8_t i8() { return static_cast<std::int8_t>(rng()); }
  bool flag() { return (rng() & 1) != 0; }
  std::size_t count(std::size_t max) { return rng() % (max + 1); }

  std::string str(std::size_t max_len) {
    std::string s(count(max_len), '\0');
    for (auto& c : s) c = static_cast<char>('a' + rng() % 26);
    return s;
  }
  std::vector<net::PadEntry> pads(std::size_t max_len) {
    std::vector<net::PadEntry> v(count(max_len));
    for (auto& p : v) p = {u8(), i8()};
    return v;
  }
};

// Equality for the message structs (defined here so the shipped headers
// stay minimal; field-by-field keeps failures readable in gtest output).
bool eq(const Status& a, const Status& b) {
  return a.ok == b.ok && a.detail == b.detail;
}
bool eq(const NbrTableEntryMsg& a, const NbrTableEntryMsg& b) {
  return a.addr == b.addr && a.name == b.name && a.lqi == b.lqi &&
         a.rssi == b.rssi && a.blacklisted == b.blacklisted &&
         a.age_ms == b.age_ms;
}
bool eq(const PingRoundMsg& a, const PingRoundMsg& b) {
  return a.round == b.round && a.received == b.received &&
         a.rtt_us == b.rtt_us && a.lqi_fwd == b.lqi_fwd &&
         a.lqi_bwd == b.lqi_bwd && a.rssi_fwd == b.rssi_fwd &&
         a.rssi_bwd == b.rssi_bwd && a.queue_local == b.queue_local &&
         a.queue_remote == b.queue_remote && a.hops_fwd == b.hops_fwd &&
         a.hops_bwd == b.hops_bwd;
}
bool eq(const ProcessInfoMsg& a, const ProcessInfoMsg& b) {
  return a.name == b.name && a.running == b.running &&
         a.flash_bytes == b.flash_bytes && a.ram_bytes == b.ram_bytes;
}
bool eq(const LogEventMsg& a, const LogEventMsg& b) {
  return a.time_ms == b.time_ms && a.code == b.code && a.arg == b.arg;
}
bool eq(const RoutingStatMsg& a, const RoutingStatMsg& b) {
  return a.port == b.port && a.name == b.name &&
         a.originated == b.originated && a.forwarded == b.forwarded &&
         a.delivered == b.delivered &&
         a.dropped_no_route == b.dropped_no_route &&
         a.dropped_ttl == b.dropped_ttl && a.control_sent == b.control_sent;
}
template <typename T, typename F>
bool all_eq(const std::vector<T>& a, const std::vector<T>& b, F f) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!f(a[i], b[i])) return false;
  }
  return true;
}

constexpr int kRoundTrips = 200;

// -- round trips ---------------------------------------------------------

TEST(MessagesFuzz, RoundTripScalarBodies) {
  Gen g(1);
  for (int i = 0; i < kRoundTrips; ++i) {
    {
      RadioSetPower m{g.u8()};
      const auto d = decode_radio_set_power(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->level, m.level);
    }
    {
      RadioSetChannel m{g.u8()};
      const auto d = decode_radio_set_channel(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->channel, m.channel);
    }
    {
      NbrList m{g.flag()};
      const auto d = decode_nbr_list(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->with_link_info, m.with_link_info);
    }
    {
      NbrBlacklist m{static_cast<net::Addr>(g.u16())};
      const auto d = decode_nbr_blacklist(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->addr, m.addr);
    }
    {
      NbrUpdate m{g.u32()};
      const auto d = decode_nbr_update(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->beacon_period_ms, m.beacon_period_ms);
    }
    {
      ExecCommand m{g.str(64)};
      const auto d = decode_exec(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->params, m.params);
    }
    {
      Status m{g.flag(), g.str(48)};
      const auto d = decode_status(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_TRUE(eq(*d, m));
    }
    {
      RadioConfig m{g.u8(), g.u8()};
      const auto d = decode_radio_config(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->power, m.power);
      EXPECT_EQ(d->channel, m.channel);
    }
    {
      EnergyMsg m{g.u32(), g.u64(), g.u64()};
      const auto d = decode_energy(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->uptime_ms, m.uptime_ms);
      EXPECT_EQ(d->tx_uj, m.tx_uj);
      EXPECT_EQ(d->listen_uj, m.listen_uj);
    }
    {
      ScanRequest m{g.u16()};
      const auto d = decode_scan_request(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->dwell_ms, m.dwell_ms);
    }
  }
}

TEST(MessagesFuzz, RoundTripNbrTable) {
  Gen g(2);
  for (int i = 0; i < kRoundTrips; ++i) {
    NbrTableMsg m;
    m.with_link_info = g.flag();
    m.entries.resize(g.count(20));
    for (auto& e : m.entries) {
      e = {static_cast<net::Addr>(g.u16()), g.str(12), g.u8(), g.i8(),
           g.flag(), g.u32()};
    }
    const auto d = decode_nbr_table(encode_body(m));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->with_link_info, m.with_link_info);
    EXPECT_TRUE(all_eq(d->entries, m.entries,
                       [](const auto& a, const auto& b) { return eq(a, b); }));
  }
}

TEST(MessagesFuzz, RoundTripPingResult) {
  Gen g(3);
  for (int i = 0; i < kRoundTrips; ++i) {
    PingResultMsg m;
    m.target = static_cast<net::Addr>(g.u16());
    m.rounds = g.u8();
    m.payload_len = g.u8();
    m.power = g.u8();
    m.channel = g.u8();
    m.rounds_data.resize(g.count(10));
    for (auto& r : m.rounds_data) {
      r.round = g.u8();
      r.received = g.flag();
      r.rtt_us = g.u32();
      r.lqi_fwd = g.u8();
      r.lqi_bwd = g.u8();
      r.rssi_fwd = g.i8();
      r.rssi_bwd = g.i8();
      r.queue_local = g.u8();
      r.queue_remote = g.u8();
      r.hops_fwd = g.pads(6);
      r.hops_bwd = g.pads(6);
    }
    const auto d = decode_ping_result(encode_body(m));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->target, m.target);
    EXPECT_EQ(d->rounds, m.rounds);
    EXPECT_EQ(d->payload_len, m.payload_len);
    EXPECT_EQ(d->power, m.power);
    EXPECT_EQ(d->channel, m.channel);
    EXPECT_TRUE(all_eq(d->rounds_data, m.rounds_data,
                       [](const auto& a, const auto& b) { return eq(a, b); }));
  }
}

TEST(MessagesFuzz, RoundTripTraceroute) {
  Gen g(4);
  for (int i = 0; i < kRoundTrips; ++i) {
    {
      TracerouteReportMsg m;
      m.task_id = g.u16();
      m.hop_index = g.u8();
      m.prober = static_cast<net::Addr>(g.u16());
      m.next = static_cast<net::Addr>(g.u16());
      m.reached = g.flag();
      m.fail_reason = static_cast<TrFailReason>(g.u8() % 3);
      m.rtt_us = g.u32();
      m.lqi_fwd = g.u8();
      m.lqi_bwd = g.u8();
      m.rssi_fwd = g.i8();
      m.rssi_bwd = g.i8();
      m.queue_near = g.u8();
      m.queue_far = g.u8();
      m.is_final = g.flag();
      const auto d = decode_traceroute_report(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->task_id, m.task_id);
      EXPECT_EQ(d->hop_index, m.hop_index);
      EXPECT_EQ(d->prober, m.prober);
      EXPECT_EQ(d->next, m.next);
      EXPECT_EQ(d->reached, m.reached);
      EXPECT_EQ(d->fail_reason, m.fail_reason);
      EXPECT_EQ(d->rtt_us, m.rtt_us);
      EXPECT_EQ(d->lqi_fwd, m.lqi_fwd);
      EXPECT_EQ(d->lqi_bwd, m.lqi_bwd);
      EXPECT_EQ(d->rssi_fwd, m.rssi_fwd);
      EXPECT_EQ(d->rssi_bwd, m.rssi_bwd);
      EXPECT_EQ(d->queue_near, m.queue_near);
      EXPECT_EQ(d->queue_far, m.queue_far);
      EXPECT_EQ(d->is_final, m.is_final);
    }
    {
      TracerouteDoneMsg m{g.u16(), g.u8(), g.u8(), g.str(16)};
      const auto d = decode_traceroute_done(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->task_id, m.task_id);
      EXPECT_EQ(d->hops, m.hops);
      EXPECT_EQ(d->received, m.received);
      EXPECT_EQ(d->protocol_name, m.protocol_name);
    }
  }
}

TEST(MessagesFuzz, RoundTripProcessLogScanNetstat) {
  Gen g(5);
  for (int i = 0; i < kRoundTrips; ++i) {
    {
      ProcessListMsg m;
      m.processes.resize(g.count(8));
      for (auto& p : m.processes) {
        p = {g.str(12), g.flag(), g.u32(), g.u32()};
      }
      const auto d = decode_process_list(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_TRUE(all_eq(
          d->processes, m.processes,
          [](const auto& a, const auto& b) { return eq(a, b); }));
    }
    {
      LogDataMsg m;
      m.total = g.u32();
      m.dropped = g.u32();
      m.events.resize(g.count(32));
      for (auto& e : m.events) e = {g.u32(), g.u16(), g.u32()};
      const auto d = decode_log_data(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->total, m.total);
      EXPECT_EQ(d->dropped, m.dropped);
      EXPECT_TRUE(all_eq(d->events, m.events, [](const auto& a,
                                                 const auto& b) {
        return eq(a, b);
      }));
    }
    {
      ScanDataMsg m;
      m.entries.resize(g.count(16));
      for (auto& e : m.entries) e = {g.u8(), g.i8()};
      const auto d = decode_scan_data(encode_body(m));
      ASSERT_TRUE(d.has_value());
      ASSERT_EQ(d->entries.size(), m.entries.size());
      for (std::size_t k = 0; k < m.entries.size(); ++k) {
        EXPECT_EQ(d->entries[k].channel, m.entries[k].channel);
        EXPECT_EQ(d->entries[k].rssi, m.entries[k].rssi);
      }
    }
    {
      NetstatMsg m;
      m.mac_enqueued = g.u32();
      m.mac_sent = g.u32();
      m.mac_dropped_queue_full = g.u32();
      m.mac_dropped_channel_busy = g.u32();
      m.mac_rx_delivered = g.u32();
      m.mac_rx_crc_failures = g.u32();
      m.mac_cca_busy = g.u32();
      m.net_delivered = g.u32();
      m.net_local = g.u32();
      m.net_no_subscriber = g.u32();
      m.net_malformed = g.u32();
      m.protocols.resize(g.count(4));
      for (auto& p : m.protocols) {
        p = {g.u8(),  g.str(10), g.u32(), g.u32(),
             g.u32(), g.u32(),   g.u32(), g.u32()};
      }
      const auto d = decode_netstat(encode_body(m));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->mac_enqueued, m.mac_enqueued);
      EXPECT_EQ(d->mac_sent, m.mac_sent);
      EXPECT_EQ(d->mac_dropped_queue_full, m.mac_dropped_queue_full);
      EXPECT_EQ(d->mac_dropped_channel_busy, m.mac_dropped_channel_busy);
      EXPECT_EQ(d->mac_rx_delivered, m.mac_rx_delivered);
      EXPECT_EQ(d->mac_rx_crc_failures, m.mac_rx_crc_failures);
      EXPECT_EQ(d->mac_cca_busy, m.mac_cca_busy);
      EXPECT_EQ(d->net_delivered, m.net_delivered);
      EXPECT_EQ(d->net_local, m.net_local);
      EXPECT_EQ(d->net_no_subscriber, m.net_no_subscriber);
      EXPECT_EQ(d->net_malformed, m.net_malformed);
      EXPECT_TRUE(all_eq(
          d->protocols, m.protocols,
          [](const auto& a, const auto& b) { return eq(a, b); }));
    }
  }
}

TEST(MessagesFuzz, RoundTripEnvelope) {
  Gen g(6);
  for (int i = 0; i < kRoundTrips; ++i) {
    std::vector<std::uint8_t> body(g.count(120));
    for (auto& b : body) b = g.u8();
    const auto type = static_cast<MsgType>(g.u8());
    const auto wire = encode_mgmt(type, body);
    const auto d = decode_mgmt(wire);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->type, type);
    EXPECT_EQ(d->body, body);
  }
}

// -- adversarial byte soup ----------------------------------------------

constexpr int kFuzzBuffers = 10000;
constexpr std::size_t kMaxFuzzLen = 160;

/// Feed `decode` random buffers. Any return value is acceptable; the only
/// failure modes are crashes / sanitizer reports. Buffers are biased
/// short (half ≤ 16 bytes) because length-prefix bugs live there.
template <typename F>
void soup(std::uint64_t seed, F&& decode) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < kFuzzBuffers; ++i) {
    const std::size_t len = (i % 2 == 0) ? rng() % 17 : rng() % kMaxFuzzLen;
    buf.resize(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    (void)decode(std::span<const std::uint8_t>(buf));
  }
}

TEST(MessagesFuzz, DecodersSurviveByteSoup) {
  soup(100, [](auto s) { return decode_mgmt(s).has_value(); });
  soup(101, [](auto s) { return decode_radio_set_power(s).has_value(); });
  soup(102, [](auto s) { return decode_radio_set_channel(s).has_value(); });
  soup(103, [](auto s) { return decode_nbr_list(s).has_value(); });
  soup(104, [](auto s) { return decode_nbr_blacklist(s).has_value(); });
  soup(105, [](auto s) { return decode_nbr_update(s).has_value(); });
  soup(106, [](auto s) { return decode_exec(s).has_value(); });
  soup(107, [](auto s) { return decode_status(s).has_value(); });
  soup(108, [](auto s) { return decode_radio_config(s).has_value(); });
  soup(109, [](auto s) { return decode_nbr_table(s).has_value(); });
  soup(110, [](auto s) { return decode_ping_result(s).has_value(); });
  soup(111, [](auto s) { return decode_traceroute_report(s).has_value(); });
  soup(112, [](auto s) { return decode_traceroute_done(s).has_value(); });
  soup(113, [](auto s) { return decode_process_list(s).has_value(); });
  soup(114, [](auto s) { return decode_log_data(s).has_value(); });
  soup(115, [](auto s) { return decode_energy(s).has_value(); });
  soup(116, [](auto s) { return decode_scan_request(s).has_value(); });
  soup(117, [](auto s) { return decode_scan_data(s).has_value(); });
  soup(118, [](auto s) { return decode_netstat(s).has_value(); });
}

/// Mutated valid messages: flip bytes / truncate real encodings, which
/// reaches deeper decoder states than pure noise.
TEST(MessagesFuzz, DecodersSurviveMutatedValidMessages) {
  Gen g(7);
  std::mt19937_64 rng(200);
  for (int i = 0; i < 2000; ++i) {
    PingResultMsg m;
    m.rounds_data.resize(g.count(6));
    for (auto& r : m.rounds_data) {
      r.hops_fwd = g.pads(4);
      r.hops_bwd = g.pads(4);
    }
    auto wire = encode_body(m);
    if (!wire.empty()) {
      // One byte flipped, then a random truncation.
      wire[rng() % wire.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
      wire.resize(rng() % (wire.size() + 1));
    }
    (void)decode_ping_result(wire);

    NbrTableMsg t;
    t.entries.resize(g.count(10));
    for (auto& e : t.entries) e.name = g.str(10);
    auto tw = encode_body(t);
    if (!tw.empty()) {
      tw[rng() % tw.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
      tw.resize(rng() % (tw.size() + 1));
    }
    (void)decode_nbr_table(tw);
  }
}

// -- flight-recorder trace codec ----------------------------------------

/// Round-trip every record kind with randomized timestamps, sequence
/// numbers, and arguments (biased toward varint boundaries).
TEST(MessagesFuzz, RoundTripTraceRecords) {
  std::mt19937_64 rng(300);
  const auto arg = [&rng]() -> std::uint64_t {
    switch (rng() % 4) {
      case 0: return rng() % 2;                       // tiny
      case 1: return (1ull << (7 * (rng() % 10))) - 1;  // varint edge
      case 2: return rng() & 0xffffffffull;
      default: return rng();                          // full 64-bit
    }
  };
  for (int i = 0; i < kRoundTrips * 10; ++i) {
    const auto kind = static_cast<trace::RecKind>(
        1 + rng() % static_cast<unsigned>(trace::RecKind::kMaxKind));
    const auto t_ns = static_cast<std::int64_t>(rng() >> 1);
    const std::uint64_t seq = arg();
    const std::uint64_t a = arg(), b = arg(), c = arg(), d = arg();

    std::uint8_t buf[trace::kMaxRecordBytes];
    const std::size_t len =
        trace::encode_record(buf, kind, t_ns, seq, a, b, c, d);
    ASSERT_LE(len, trace::kMaxRecordBytes);

    std::size_t pos = 0;
    trace::Record rec;
    ASSERT_TRUE(trace::decode_record({buf, len}, pos, rec));
    ASSERT_EQ(pos, len);
    EXPECT_EQ(rec.kind, kind);
    EXPECT_EQ(rec.t_ns, t_ns);
    EXPECT_EQ(rec.seq, seq);
    const std::uint64_t args[] = {a, b, c, d};
    const int argc = trace::kArgc[static_cast<std::size_t>(kind)];
    for (int k = 0; k < argc; ++k) EXPECT_EQ(rec.args[k], args[k]);
  }
}

/// The streaming record decoder and the LVTR container parser survive
/// arbitrary byte soup: nullopt/false is fine, crashes and sanitizer
/// reports are not.
TEST(MessagesFuzz, TraceDecodersSurviveByteSoup) {
  soup(310, [](auto s) {
    std::size_t pos = 0;
    trace::Record rec;
    // Walk the buffer like Ring::linearize consumers do.
    while (pos < s.size() && trace::decode_record(s, pos, rec)) {
    }
    return pos;
  });
  soup(311, [](auto s) { return trace::FlightRecorder::parse(s).has_value(); });
}

/// Mutated valid captures: serialize a real multi-ring recorder, then
/// flip a byte and truncate. Reaches the container parser's deeper states
/// (source directory, ring payload walks) that pure noise rarely finds.
TEST(MessagesFuzz, TraceParserSurvivesMutatedCaptures) {
  std::mt19937_64 rng(320);
  for (int i = 0; i < 2000; ++i) {
    trace::FlightRecorder rec(512);
    const auto r1 = rec.register_source(
        trace::source_id(trace::Domain::kPhy, static_cast<std::uint32_t>(i)));
    const auto r2 = rec.register_source(
        trace::source_id(trace::Domain::kTest, 0));
    const int n = static_cast<int>(rng() % 40);
    for (int k = 0; k < n; ++k) {
      rec.append((k & 1) != 0 ? r1 : r2,
                 static_cast<trace::RecKind>(
                     1 + rng() % static_cast<unsigned>(trace::RecKind::kMaxKind)),
                 static_cast<std::int64_t>(rng() >> 1), rng(), rng(), rng(),
                 rng());
    }
    auto wire = rec.serialize();
    if (!wire.empty()) {
      wire[rng() % wire.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
      wire.resize(rng() % (wire.size() + 1));
    }
    (void)trace::FlightRecorder::parse(wire);
  }
}

}  // namespace
}  // namespace liteview::lv
