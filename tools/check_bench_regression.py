#!/usr/bin/env python3
"""Bench smoke gate: fail CI when the PHY hot-path benches regress.

Runs (or is handed) a google-benchmark JSON result for the fan-out /
channel-power benches and compares items/sec against the checked-in
aggregates in BENCH_phy_hotpath.json. Raw throughput is meaningless
across heterogeneous CI hosts, so both sides are first normalized by the
BM_PerEvaluation anchor — a pure-math kernel untouched by the PHY rework
— which cancels host-speed differences and leaves only the shape of the
hot path. A bench is a regression when its normalized throughput drops
more than --threshold (default 30%) below the recorded baseline. The run
is checked against two baselines: BENCH_phy_hotpath.json (the pre-SIMD
hot-path shape) and BENCH_simd_phy.json (the batched-kernel speedup —
this one catches a silent fall-back to the scalar plane).

Also gates the flight-recorder observability overhead: bench/flight_recorder
emits host-independent wall-time ratios (recording on vs. off on the same
machine), so those anchors need no normalization — the gate fails when the
overhead ratio drifts more than --fr-slack above the checked-in
BENCH_flight_recorder.json, or when the bench reports that the observer
perturbed the simulation counters.

Also gates the chaos campaign bench (bench/chaos_campaign): campaigns must
complete with zero failed cells, the inline-oracle overhead ratio must stay
within --chaos-slack of the checked-in BENCH_chaos_campaign.json, and the
200/50-cell throughput ratio (host-independent shape) must not collapse.

Also gates the control-plane load generator (bench/load_gen): every
requested session must join and stay live concurrently, zero transport or
command errors, and the p99/p50 command-latency tail ratio must stay within
--cp-slack of the checked-in BENCH_control_plane.json. Raw sessions/s and
commands/s are host-dependent and only reported, never gated.

Also gates the sharded mega-topology sweep (bench/scale_sweep --shards):
the sharded runs must stay byte-identical to the one-shard run (a hard
failure — the whole point of the shard engine is determinism under
partitioning), and the sharded-over-serial wall-time ratios must not
collapse below the checked-in BENCH_sharded_sim.json minus --shard-slack.
The ratio compares two runs on the same host so it transfers across
machines, but it does scale with core count — the default slack is wide
enough that a single-core runner still clears a multi-core baseline,
while an accidental global lock (10x collapse) still trips. Raw ev/s is
host-dependent and only reported, never gated.

Usage:
  check_bench_regression.py --current out.json [--baseline BENCH_phy_hotpath.json]
  check_bench_regression.py --run ./build/bench/micro_core   # runs the bench itself
  check_bench_regression.py --fr-run ./build/bench/flight_recorder
  check_bench_regression.py --fr-current fr.json [--fr-baseline BENCH_flight_recorder.json]
  check_bench_regression.py --chaos-run ./build/bench/chaos_campaign
  check_bench_regression.py --chaos-current chaos.json [--chaos-baseline BENCH_chaos_campaign.json]
  check_bench_regression.py --cp-run ./build/bench/load_gen
  check_bench_regression.py --cp-current cp.json [--cp-baseline BENCH_control_plane.json]
  check_bench_regression.py --shard-run ./build/bench/scale_sweep
  check_bench_regression.py --shard-current sweep.json [--shard-baseline BENCH_sharded_sim.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_phy_hotpath.json"
DEFAULT_SIMD_BASELINE = REPO_ROOT / "BENCH_simd_phy.json"
DEFAULT_FR_BASELINE = REPO_ROOT / "BENCH_flight_recorder.json"
DEFAULT_CHAOS_BASELINE = REPO_ROOT / "BENCH_chaos_campaign.json"
DEFAULT_CP_BASELINE = REPO_ROOT / "BENCH_control_plane.json"
DEFAULT_SHARD_BASELINE = REPO_ROOT / "BENCH_sharded_sim.json"
SHARD_RATIO_ANCHORS = ("sharded_over_serial_1000", "sharded_over_serial_10000")
BENCH_FILTER = "BM_MediumTransmitFanout|BM_ChannelPowerSample|BM_PerEvaluation"
FR_ANCHORS = ("ring_overhead_ratio", "ring_sniffers_overhead_ratio")
CHAOS_RATIO_ANCHORS = ("oracle_overhead_ratio", "cpm_ratio_200_over_50")


def baseline_key(baseline: dict, key: str, path: str) -> float:
    """A required anchor from a baseline file, or a clear failure.

    A hand-edited or stale baseline missing an anchor used to surface as a
    bare KeyError traceback; name the file, the key, and the fix instead.
    """
    if key not in baseline:
        sys.exit(
            f"error: baseline {path} is missing required key '{key}' — "
            f"regenerate it from the matching bench binary (--json) or "
            f"restore the checked-in file")
    try:
        return float(baseline[key])
    except (TypeError, ValueError):
        sys.exit(
            f"error: baseline {path} key '{key}' is not numeric "
            f"({baseline[key]!r}) — regenerate the baseline")


def run_bench(binary: str) -> dict:
    """Invoke micro_core with the smoke filter and return its parsed JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    cmd = [
        binary,
        f"--benchmark_filter={BENCH_FILTER}",
        "--benchmark_min_time=1",
        "--benchmark_repetitions=3",
        "--benchmark_report_aggregates_only=true",
        "--benchmark_format=json",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def current_means(result: dict) -> tuple[dict[str, float], float]:
    """(bench -> items/sec mean, anchor real_time ns mean) from a run."""
    items: dict[str, float] = {}
    anchor_ns = None
    for b in result.get("benchmarks", []):
        if b.get("aggregate_name") != "mean":
            continue
        name = b["run_name"]
        if name == "BM_PerEvaluation":
            anchor_ns = float(b["real_time"])
        elif "items_per_second" in b:
            items[name] = float(b["items_per_second"])
    if anchor_ns is None:
        sys.exit("error: run is missing the BM_PerEvaluation anchor")
    return items, anchor_ns


def run_flight_recorder(binary: str) -> dict:
    """Invoke bench/flight_recorder --json and return its parsed output."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    subprocess.run([binary, "--json", out_path], check=True,
                   stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def check_flight_recorder(current: dict, baseline_path: str,
                          slack: float) -> list[str]:
    """Compare overhead-ratio anchors against the checked-in baseline.

    Ratios compare two runs on the same host, so they transfer across
    machines; `slack` is additive headroom over the baseline ratio (noise
    on a loaded CI runner easily moves a ~1.05 ratio by a few points).
    """
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures = []
    for anchor in FR_ANCHORS:
        base = baseline_key(baseline, anchor, baseline_path)
        if anchor not in current:
            failures.append(f"{anchor}: missing from current run")
            continue
        cur = float(current[anchor])
        limit = base + slack
        status = "OK" if cur <= limit else "REGRESSION"
        print(f"  {anchor:32s} baseline {base:5.2f}  current {cur:5.2f}  "
              f"limit {limit:5.2f}  {status}")
        if status != "OK":
            failures.append(f"{anchor}: overhead {cur:.2f} > limit {limit:.2f}")
    if not current.get("identical_counters", False):
        failures.append("identical_counters: the observer perturbed the "
                        "simulation (determinism contract broken)")
    return failures


def run_chaos(binary: str) -> dict:
    """Invoke bench/chaos_campaign --json and return its parsed output."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    subprocess.run([binary, "--json", out_path], check=True,
                   stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def check_chaos(current: dict, baseline_path: str, slack: float) -> list[str]:
    """Gate the chaos campaign bench.

    Hard requirements first: every campaign cell must pass (a failed cell
    is a found bug or a flaky oracle, either of which blocks), and the
    inline probe must not perturb the beacon world's delivery counters.
    The overhead and throughput-shape ratios compare two runs on the same
    host, so they transfer across machines; `slack` is additive headroom.
    """
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures = []
    for key in ("failed_cells_50", "failed_cells_200"):
        if key not in current:
            failures.append(f"{key}: missing from current run")
        elif int(current[key]) != 0:
            failures.append(f"{key}: {current[key]} campaign cells failed")
    for anchor in CHAOS_RATIO_ANCHORS:
        base = baseline_key(baseline, anchor, baseline_path)
        if anchor not in current:
            failures.append(f"{anchor}: missing from current run")
            continue
        cur = float(current[anchor])
        limit = base + slack
        status = "OK" if cur <= limit else "REGRESSION"
        print(f"  {anchor:32s} baseline {base:5.2f}  current {cur:5.2f}  "
              f"limit {limit:5.2f}  {status}")
        if status != "OK":
            failures.append(f"{anchor}: ratio {cur:.2f} > limit {limit:.2f}")
    if not current.get("identical_counters", False):
        failures.append("identical_counters: the inline oracle probe "
                        "perturbed the simulation (determinism contract "
                        "broken)")
    return failures


def run_load_gen(binary: str) -> dict:
    """Invoke bench/load_gen --json and return its parsed output."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    subprocess.run([binary, "--json", out_path], check=True,
                   stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def check_control_plane(current: dict, baseline_path: str,
                        slack: float) -> list[str]:
    """Gate the control-plane load generator.

    Hard requirements first: the server must carry at least as many live
    concurrent sessions as the baseline run did (the paper-scale claim is
    1000 sessions over one n=1000 deployment) with zero errors. The only
    performance anchor is the p99/p50 latency tail ratio — it compares two
    quantiles of the same run on the same host, so it transfers across
    machines; `slack` is additive headroom over the baseline ratio.
    """
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures = []

    base_sessions = baseline_key(baseline, "concurrent_sessions",
                                 baseline_path)
    cur_sessions = float(current.get("concurrent_sessions", 0))
    requested = float(current.get("sessions_requested", 0))
    status = "OK" if cur_sessions >= base_sessions else "REGRESSION"
    print(f"  {'concurrent_sessions':32s} baseline {base_sessions:5.0f}  "
          f"current {cur_sessions:5.0f}  {status}")
    if status != "OK":
        failures.append(f"concurrent_sessions: {cur_sessions:.0f} < "
                        f"baseline {base_sessions:.0f}")
    if requested and cur_sessions < requested:
        failures.append(f"concurrent_sessions: only {cur_sessions:.0f} of "
                        f"{requested:.0f} requested sessions stayed live")

    errors = current.get("errors")
    if errors is None:
        failures.append("errors: missing from current run")
    elif int(errors) != 0:
        failures.append(f"errors: {errors} transport/command errors")

    base_tail = baseline_key(baseline, "p99_over_p50", baseline_path)
    if "p99_over_p50" not in current:
        failures.append("p99_over_p50: missing from current run")
    else:
        cur_tail = float(current["p99_over_p50"])
        limit = base_tail + slack
        status = "OK" if cur_tail <= limit else "REGRESSION"
        print(f"  {'p99_over_p50':32s} baseline {base_tail:5.2f}  "
              f"current {cur_tail:5.2f}  limit {limit:5.2f}  {status}")
        if status != "OK":
            failures.append(f"p99_over_p50: tail ratio {cur_tail:.2f} > "
                            f"limit {limit:.2f}")

    # Reported for humans; host-dependent, never gated.
    for key in ("sessions_per_sec", "commands_per_sec",
                "cmd_latency_p50_us", "cmd_latency_p99_us"):
        if key in current:
            print(f"  {key:32s} current {float(current[key]):12.0f}  "
                  f"(informational)")
    return failures


def run_scale_sweep(binary: str) -> dict:
    """Invoke bench/scale_sweep --shards 4 --json and return its output."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    subprocess.run([binary, "--shards", "4", "--json", out_path], check=True,
                   stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def check_sharded(current: dict, baseline_path: str, slack: float) -> list[str]:
    """Gate the sharded mega-topology sweep.

    Hard requirement first: every sharded run must produce byte-identical
    observables (reception logs, medium counters, snapshot) to the
    one-shard run — partitioning is only allowed to change wall time.
    The sharded-over-serial wall-time ratios are speedups (bigger is
    better), so the gate is cur >= baseline - slack; the wide default
    slack absorbs the core-count difference between the baseline host and
    a small CI runner while still catching a serialization collapse.
    """
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures = []

    sharded = current.get("sharded")
    if not isinstance(sharded, dict):
        return ["sharded: object missing from current run (scale_sweep too "
                "old, or --json output truncated)"]
    base_sharded = baseline.get("sharded")
    if not isinstance(base_sharded, dict):
        sys.exit(f"error: baseline {baseline_path} is missing the 'sharded' "
                 f"object — regenerate it with "
                 f"scale_sweep --shards 4 --json")

    if not sharded.get("byte_identity", False):
        failures.append("byte_identity: a sharded run diverged from the "
                        "one-shard run (determinism contract broken)")

    for anchor in SHARD_RATIO_ANCHORS:
        base = baseline_key(base_sharded, anchor, baseline_path)
        if anchor not in sharded:
            failures.append(f"{anchor}: missing from current run")
            continue
        cur = float(sharded[anchor])
        limit = base - slack
        status = "OK" if cur >= limit else "REGRESSION"
        print(f"  {anchor:32s} baseline {base:5.2f}  current {cur:5.2f}  "
              f"limit {limit:5.2f}  {status}")
        if status != "OK":
            failures.append(f"{anchor}: speedup {cur:.2f} < limit "
                            f"{limit:.2f}")

    # Reported for humans; host-dependent, never gated.
    print(f"  {'hardware_threads':32s} baseline "
          f"{base_sharded.get('hardware_threads', '?'):>5}  current "
          f"{sharded.get('hardware_threads', '?'):>5}  (informational)")
    for entry in current.get("sharded_sweep", []):
        print(f"  n={entry.get('nodes'):<6} shards={entry.get('shards'):<3} "
              f"{float(entry.get('events_per_sec', 0)):12.0f} ev/s  "
              f"(informational)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    src = ap.add_mutually_exclusive_group(required=True)
    src.add_argument("--current", help="google-benchmark JSON from a fresh run")
    src.add_argument("--run", help="micro_core binary to execute for the run")
    src.add_argument("--fr-current",
                     help="bench/flight_recorder --json output to check")
    src.add_argument("--fr-run",
                     help="flight_recorder binary to execute for the run")
    src.add_argument("--chaos-current",
                     help="bench/chaos_campaign --json output to check")
    src.add_argument("--chaos-run",
                     help="chaos_campaign bench binary to execute for the run")
    src.add_argument("--cp-current",
                     help="bench/load_gen --json output to check")
    src.add_argument("--cp-run",
                     help="load_gen binary to execute for the run")
    src.add_argument("--shard-current",
                     help="bench/scale_sweep --json output to check")
    src.add_argument("--shard-run",
                     help="scale_sweep binary to execute for the run")
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                    help="checked-in BENCH_phy_hotpath.json")
    ap.add_argument("--simd-baseline", default=str(DEFAULT_SIMD_BASELINE),
                    help="checked-in BENCH_simd_phy.json (batched-kernel "
                         "speedup baseline, gated alongside --baseline)")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max tolerated normalized drop (fraction)")
    ap.add_argument("--fr-baseline", default=str(DEFAULT_FR_BASELINE),
                    help="checked-in BENCH_flight_recorder.json")
    ap.add_argument("--fr-slack", type=float, default=0.40,
                    help="additive headroom over the baseline overhead ratio")
    ap.add_argument("--chaos-baseline", default=str(DEFAULT_CHAOS_BASELINE),
                    help="checked-in BENCH_chaos_campaign.json")
    ap.add_argument("--chaos-slack", type=float, default=0.25,
                    help="additive headroom over the baseline chaos ratios")
    ap.add_argument("--cp-baseline", default=str(DEFAULT_CP_BASELINE),
                    help="checked-in BENCH_control_plane.json")
    ap.add_argument("--cp-slack", type=float, default=3.0,
                    help="additive headroom over the baseline latency tail "
                         "ratio (quantile tails are noisy on shared runners)")
    ap.add_argument("--shard-baseline", default=str(DEFAULT_SHARD_BASELINE),
                    help="checked-in BENCH_sharded_sim.json")
    ap.add_argument("--shard-slack", type=float, default=0.5,
                    help="subtractive headroom under the baseline "
                         "sharded-over-serial speedup (wide: the ratio "
                         "scales with core count across hosts)")
    args = ap.parse_args()

    if args.shard_run or args.shard_current:
        if args.shard_run:
            current = run_scale_sweep(args.shard_run)
        else:
            with open(args.shard_current) as f:
                current = json.load(f)
        failures = check_sharded(current, args.shard_baseline,
                                 args.shard_slack)
        if failures:
            print("\nsharded sweep gate FAILED:")
            for f_ in failures:
                print(f"  - {f_}")
            return 1
        print("\nsharded sweep gate passed")
        return 0

    if args.cp_run or args.cp_current:
        if args.cp_run:
            current = run_load_gen(args.cp_run)
        else:
            with open(args.cp_current) as f:
                current = json.load(f)
        failures = check_control_plane(current, args.cp_baseline,
                                       args.cp_slack)
        if failures:
            print("\ncontrol-plane load gate FAILED:")
            for f_ in failures:
                print(f"  - {f_}")
            return 1
        print("\ncontrol-plane load gate passed")
        return 0

    if args.chaos_run or args.chaos_current:
        if args.chaos_run:
            current = run_chaos(args.chaos_run)
        else:
            with open(args.chaos_current) as f:
                current = json.load(f)
        failures = check_chaos(current, args.chaos_baseline, args.chaos_slack)
        if failures:
            print("\nchaos campaign gate FAILED:")
            for f_ in failures:
                print(f"  - {f_}")
            return 1
        print("\nchaos campaign gate passed")
        return 0

    if args.fr_run or args.fr_current:
        if args.fr_run:
            current = run_flight_recorder(args.fr_run)
        else:
            with open(args.fr_current) as f:
                current = json.load(f)
        failures = check_flight_recorder(current, args.fr_baseline,
                                         args.fr_slack)
        if failures:
            print("\nflight-recorder overhead gate FAILED:")
            for f_ in failures:
                print(f"  - {f_}")
            return 1
        print("\nflight-recorder overhead gate passed")
        return 0

    if args.run:
        result = run_bench(args.run)
    else:
        with open(args.current) as f:
            result = json.load(f)
    cur_items, cur_anchor_ns = current_means(result)

    # Two baselines guard different things: BENCH_phy_hotpath.json is the
    # pre-SIMD hot-path shape (a deep architectural regression trips it),
    # while BENCH_simd_phy.json records the batched-kernel speedup — a
    # change that quietly falls back to scalar or unwinds the batching
    # would still clear the old baseline but not this one.
    failures = []
    for baseline_path in (args.baseline, args.simd_baseline):
        with open(baseline_path) as f:
            baseline = json.load(f)
        if "anchor" not in baseline or "after" not in baseline:
            missing = "anchor" if "anchor" not in baseline else "after"
            sys.exit(
                f"error: baseline {baseline_path} is missing required key "
                f"'{missing}' — regenerate it from bench/micro_core or "
                f"restore the checked-in file")
        base_anchor_ns = baseline_key(baseline["anchor"], "real_time_ns_mean",
                                      baseline_path)
        base_after = baseline["after"]

        # Anchor normalization: a host that runs BM_PerEvaluation 2x faster
        # is expected to run the PHY benches ~2x faster too; dividing both
        # sides by their anchor throughput (1/anchor_ns) compares shapes,
        # not hosts.
        host_scale = base_anchor_ns / cur_anchor_ns
        print(f"[{pathlib.Path(baseline_path).name}] anchor: baseline "
              f"{base_anchor_ns:.1f} ns, current {cur_anchor_ns:.1f} ns -> "
              f"host scale {host_scale:.3f}")

        for name, entry in sorted(base_after.items()):
            base_ips = baseline_key(entry, "items_per_second_mean",
                                    f"{baseline_path} ('after'/{name})")
            if name not in cur_items:
                failures.append(f"{name}: missing from current run")
                continue
            norm_ips = cur_items[name] / host_scale
            ratio = norm_ips / base_ips
            status = "OK" if ratio >= 1.0 - args.threshold else "REGRESSION"
            print(f"  {name:35s} baseline {base_ips:12.0f}/s  "
                  f"normalized {norm_ips:12.0f}/s  ratio {ratio:5.2f}  "
                  f"{status}")
            if status != "OK":
                failures.append(
                    f"{name} (vs {pathlib.Path(baseline_path).name}): "
                    f"normalized ratio {ratio:.2f} < "
                    f"{1.0 - args.threshold:.2f}")

    if failures:
        print("\nbench regression gate FAILED:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
