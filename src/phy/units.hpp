// Canonical dB / dBm / milliwatt conversions for the PHY plane.
//
// One definition serves the scalar model code and the batched SIMD
// kernels: every conversion in medium.cpp, propagation.cpp, and ber.cpp
// routes through these helpers so the two code paths cannot drift by an
// ULP. The round-trip behavior is pinned by the Units suite in
// tests/test_simd.cpp.
#pragma once

#include <cmath>

namespace liteview::phy::units {

/// dB → linear power ratio.
[[nodiscard]] inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Linear power ratio → dB. Requires lin > 0.
[[nodiscard]] inline double linear_to_db(double lin) noexcept {
  return 10.0 * std::log10(lin);
}

/// dBm → milliwatts (the same mapping as db_to_linear, spelled for
/// intent at call sites that carry absolute powers).
[[nodiscard]] inline double dbm_to_mw(double dbm) noexcept {
  return db_to_linear(dbm);
}

/// Milliwatts → dBm. Requires mw > 0.
[[nodiscard]] inline double mw_to_dbm(double mw) noexcept {
  return linear_to_db(mw);
}

/// Sum two powers expressed in dBm (accumulate in linear space; -inf
/// inputs — zero power — collapse to the -300 dBm floor).
[[nodiscard]] inline double dbm_add(double a_dbm, double b_dbm) noexcept {
  const double s = dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm);
  return s > 0.0 ? mw_to_dbm(s) : -300.0;
}

/// Distance (meters) at which a log-distance model with the given path
/// loss exponent spends `budget_db`: solves 10·n·log10(d) = budget_db.
/// Used by the culling radius and topology builders; the expression must
/// stay byte-for-byte this one so both agree.
[[nodiscard]] inline double range_for_budget_m(double budget_db,
                                               double exponent) noexcept {
  return std::pow(10.0, budget_db / (10.0 * exponent));
}

}  // namespace liteview::phy::units
