// CC2420 energy accounting.
//
// The paper's "Efficiency" design goal is measured by footprint and
// communication overhead; an open-source release of this system needs
// the third axis motes actually die by: energy. Currents are the CC2420
// datasheet values at 3 V; LiteOS keeps the radio in RX whenever it is
// not transmitting (no duty cycling), so listening dominates — the
// classic WSN result, reproduced by bench/abl_energy.
#pragma once

#include <cstdint>

#include "phy/cc2420.hpp"
#include "sim/time.hpp"

namespace liteview::phy {

/// Supply voltage used for all conversions.
inline constexpr double kSupplyVolts = 3.0;
/// RX/listen current draw (datasheet: 18.8 mA).
inline constexpr double kRxCurrentMa = 18.8;

/// TX current draw at a PA level, interpolated between datasheet points
/// (8.5 mA at -25 dBm ... 17.4 mA at 0 dBm).
[[nodiscard]] double tx_current_ma(PaLevel level) noexcept;

/// Accumulates radio-on time split into TX (per PA level) and listen.
class EnergyMeter {
 public:
  /// Record a transmission of the given duration at the given PA level.
  void add_tx(sim::SimTime duration, PaLevel level) noexcept;

  /// Total TX airtime so far.
  [[nodiscard]] sim::SimTime tx_time() const noexcept { return tx_time_; }

  /// Energy spent transmitting, in millijoules.
  [[nodiscard]] double tx_mj() const noexcept { return tx_mj_; }

  /// Energy spent listening up to `now` (radio in RX whenever not TX),
  /// in millijoules. `since` is the meter's birth time.
  [[nodiscard]] double listen_mj(sim::SimTime since,
                                 sim::SimTime now) const noexcept;

  [[nodiscard]] double total_mj(sim::SimTime since,
                                sim::SimTime now) const noexcept {
    return tx_mj() + listen_mj(since, now);
  }

 private:
  sim::SimTime tx_time_;
  double tx_mj_ = 0.0;
};

}  // namespace liteview::phy
