file(REMOVE_RECURSE
  "liblv_liteview.a"
)
